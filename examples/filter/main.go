// Filter: denoise a real-valued signal with the library's real-input FFT
// (half-spectrum) — zero out the bins above a cutoff and invert. Shows
// the conventional-FFT side of the library that the SOI machinery builds
// on.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"soifft/internal/fft"
)

func main() {
	const (
		n      = 1 << 14
		cutoff = 200 // keep bins 0..cutoff
	)
	// Clean signal: two low-frequency sinusoids.
	rng := rand.New(rand.NewSource(9))
	clean := make([]float64, n)
	noisy := make([]float64, n)
	for j := 0; j < n; j++ {
		t := float64(j) / n
		clean[j] = math.Sin(2*math.Pi*50*t) + 0.5*math.Sin(2*math.Pi*120*t)
		noisy[j] = clean[j] + 0.8*rng.NormFloat64()
	}

	plan, err := fft.NewRealPlan(n)
	if err != nil {
		log.Fatal(err)
	}
	spec := make([]complex128, n/2+1)
	plan.Forward(spec, noisy)
	for k := cutoff + 1; k <= n/2; k++ {
		spec[k] = 0
	}
	filtered := make([]float64, n)
	plan.Inverse(filtered, spec)

	fmt.Printf("low-pass filter at bin %d over %d samples\n", cutoff, n)
	fmt.Printf("rms error vs clean signal: before %.3f, after %.3f\n",
		rms(noisy, clean), rms(filtered, clean))
}

func rms(got, want []float64) float64 {
	var acc float64
	for i := range got {
		d := got[i] - want[i]
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(got)))
}
