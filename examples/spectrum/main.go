// Spectrum: use the segment-of-interest machinery the way the paper's
// Fig 1 motivates it — pursue one frequency segment of a long signal
// directly, without computing (or storing) the full spectrum.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"time"

	"soifft"
	"soifft/internal/signal"
)

func main() {
	const (
		n = 1 << 18
		p = 16 // segments; each covers n/p = 16384 bins
	)
	// A faint tone at bin 70000 (inside segment 4) under noise.
	src := signal.NoisyTones(n, []int{70000}, []complex128{0.02}, 0.001, 3)

	plan, err := soifft.NewPlan(n, soifft.WithSegments(p), soifft.WithTaps(48))
	if err != nil {
		log.Fatal(err)
	}
	m := plan.SegmentLen()
	target := 70000 / m
	fmt.Printf("signal: %d points; scanning segment %d (bins %d..%d) only\n",
		n, target, target*m, (target+1)*m-1)

	seg := make([]complex128, m)
	t0 := time.Now()
	if err := plan.TransformSegment(seg, src, target); err != nil {
		log.Fatal(err)
	}
	segTime := time.Since(t0)

	// Find the tone within the segment.
	best, bestV := 0, 0.0
	for k, z := range seg {
		if a := cmplx.Abs(z); a > bestV {
			best, bestV = k, a
		}
	}
	fmt.Printf("strongest bin in segment: %d (|X| = %.2f), found in %v\n",
		target*m+best, bestV, segTime)

	// Cross-check against the full conventional spectrum.
	t0 = time.Now()
	full, err := soifft.FFT(src)
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(t0)
	fmt.Printf("cross-check, full FFT at that bin: |X| = %.2f (full transform took %v)\n",
		cmplx.Abs(full[target*m+best]), fullTime)
	fmt.Printf("segment vs full-FFT agreement: rel err %.1e\n",
		signal.RelErrL2(seg, full[target*m:(target+1)*m]))
}
