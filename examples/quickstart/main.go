// Quickstart: build an SOI plan, transform a signal, and compare the
// result and cost against a conventional FFT.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"time"

	"soifft"
	"soifft/internal/signal"
)

func main() {
	const n = 1 << 16

	// A signal with three tones buried in noise.
	src := signal.NoisyTones(n,
		[]int{1234, 20000, 50001},
		[]complex128{1, 0.5, 0.25},
		0.01, 42)

	// The SOI plan: defaults follow the paper (8 segments, β = 1/4,
	// B = 72 full accuracy).
	plan, err := soifft.NewPlan(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOI plan: N=%d, %d segments, β=%.2f, B=%d taps, ~%.1f digits\n",
		plan.N(), plan.Segments(), plan.Oversampling(), plan.Taps(), plan.PredictedDigits())

	soi := make([]complex128, n)
	t0 := time.Now()
	if err := plan.Transform(soi, src); err != nil {
		log.Fatal(err)
	}
	soiTime := time.Since(t0)

	t0 = time.Now()
	ref, err := soifft.FFT(src)
	if err != nil {
		log.Fatal(err)
	}
	refTime := time.Since(t0)

	fmt.Printf("SOI transform: %v; conventional FFT: %v\n", soiTime, refTime)
	fmt.Printf("agreement: rel err %.2e, SNR %.0f dB\n",
		signal.RelErrL2(soi, ref), signal.SNRdB(soi, ref))

	// Both spectra find the same tones.
	fmt.Println("strongest bins (SOI spectrum):")
	for _, k := range topBins(soi, 3) {
		fmt.Printf("  bin %6d  |X| = %.2f\n", k, abs(soi[k]))
	}
}

func topBins(x []complex128, k int) []int {
	idx := make([]int, 0, k)
	for len(idx) < k {
		best, bestV := -1, 0.0
		for i, v := range x {
			if abs(v) > bestV && !contains(idx, i) {
				best, bestV = i, abs(v)
			}
		}
		idx = append(idx, best)
	}
	return idx
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func abs(z complex128) float64 { return cmplx.Abs(z) }
