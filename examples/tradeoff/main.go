// Tradeoff: walk the paper's accuracy-performance ladder (Fig 7). Each
// rung shrinks the convolution tap count B: less arithmetic, lower SNR.
package main

import (
	"fmt"
	"log"
	"time"

	"soifft"
	"soifft/internal/signal"
)

func main() {
	const n = 1 << 15
	src := signal.Random(n, 11)
	ref, err := soifft.FFT(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %5s %14s %12s %14s\n", "setting", "B", "pred digits", "SNR dB", "transform")
	for _, acc := range []soifft.Accuracy{
		soifft.AccuracyFull, soifft.Accuracy270dB, soifft.Accuracy250dB,
		soifft.Accuracy230dB, soifft.Accuracy200dB,
	} {
		plan, err := soifft.NewPlan(n, soifft.WithAccuracy(acc))
		if err != nil {
			log.Fatal(err)
		}
		got := make([]complex128, n)
		t0 := time.Now()
		// Run a few times for a stable wall-clock reading.
		const reps = 5
		for i := 0; i < reps; i++ {
			if err := plan.Transform(got, src); err != nil {
				log.Fatal(err)
			}
		}
		wall := time.Since(t0) / reps
		fmt.Printf("%-12s %5d %14.1f %12.0f %14v\n",
			acc, plan.Taps(), plan.PredictedDigits(), signal.SNRdB(got, ref), wall)
	}
	fmt.Println("\npaper: at ~10 digits SOI exceeds 2x over MKL; iterative solvers can ride the low rungs")
}
