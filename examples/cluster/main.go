// Cluster: run the same transform distributed over simulated ranks with
// the SOI algorithm and with a conventional triple-all-to-all algorithm,
// and compare their communication profiles — the heart of the paper.
package main

import (
	"fmt"
	"log"
	"time"

	"soifft"
	"soifft/internal/baseline"
	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/netsim"
	"soifft/internal/signal"
)

const (
	n     = 1 << 18
	ranks = 8
)

func main() {
	src := signal.Random(n, 7)
	ref, err := fft.Forward(src)
	if err != nil {
		log.Fatal(err)
	}

	// --- SOI: one all-to-all ---
	plan, err := soifft.NewPlan(n, soifft.WithSegments(ranks))
	if err != nil {
		log.Fatal(err)
	}
	world, err := soifft.NewWorld(ranks)
	if err != nil {
		log.Fatal(err)
	}
	soi := make([]complex128, n)
	t0 := time.Now()
	if err := plan.TransformDistributed(world, soi, src); err != nil {
		log.Fatal(err)
	}
	soiWall := time.Since(t0)
	soiStats := world.Stats()

	// --- six-step: three all-to-alls ---
	six := make([]complex128, n)
	w2, err := mpi.NewWorld(ranks)
	if err != nil {
		log.Fatal(err)
	}
	nLocal := n / ranks
	t0 = time.Now()
	err = w2.Run(func(c *mpi.Comm) error {
		_, err := baseline.SixStep{}.Transform(c,
			six[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal], n)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	sixWall := time.Since(t0)
	sixStats := w2.Stats()

	fmt.Printf("N = %d over %d ranks\n\n", n, ranks)
	fmt.Printf("%-10s %8s %12s %14s %12s\n", "algorithm", "a2a", "a2a volume", "rel err", "wall (local)")
	fmt.Printf("%-10s %8d %9.1f MB %14.1e %12v\n",
		"SOI", soiStats.Alltoalls, float64(soiStats.AlltoallBytes)/1e6,
		signal.RelErrL2(soi, ref), soiWall)
	fmt.Printf("%-10s %8d %9.1f MB %14.1e %12v\n",
		"six-step", sixStats.Alltoalls, float64(sixStats.AlltoallBytes)/1e6,
		signal.RelErrL2(six, ref), sixWall)

	// What those exchange patterns would cost on the paper's fabrics.
	fmt.Println("\nmodeled wire time for this exchange pattern at 2^28 points/node, 64 nodes:")
	bytesPerNode := int64(1<<28) * 16
	for _, fab := range []netsim.Fabric{netsim.Endeavor(), netsim.Gordon(), netsim.TenGigE()} {
		one := fab.AlltoallTime(64, bytesPerNode*5/4)
		three := 3 * fab.AlltoallTime(64, bytesPerNode)
		fmt.Printf("  %-20s SOI %8.2fs   triple-a2a %8.2fs   ratio %.2fx\n",
			fab.Name(), one.Seconds(), three.Seconds(), three.Seconds()/one.Seconds())
	}
}
