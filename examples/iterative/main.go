// Iterative: the paper's Section 7.3 argument in action — "in the
// context of iterative algorithms where FFT is computed in an inner
// loop, full accuracy is typically unnecessary until very late in the
// iterative process."
//
// We solve a 1-D periodic Poisson problem  u” = f  by preconditioned
// Richardson iteration whose inner step applies the inverse Laplacian
// spectrally (forward FFT, divide by -(2πk/N)², inverse FFT). Early
// sweeps run on the cheapest SOI rung; once the residual approaches the
// transform's accuracy floor, the solver switches to the full-accuracy
// plan and finishes to near machine precision. A cluster would bank the
// ~2x speedup on every early sweep (paper Fig 7).
package main

import (
	"fmt"
	"log"
	"math"

	"soifft"
	"soifft/internal/signal"
)

const n = 1 << 14

func main() {
	// Right-hand side with zero mean (solvability on the torus).
	f := signal.Tones(n, []int{3, 40, 1000}, []complex128{1, 0.25i, 0.1})

	fast, err := soifft.NewPlan(n, soifft.WithAccuracy(soifft.Accuracy200dB))
	if err != nil {
		log.Fatal(err)
	}
	full, err := soifft.NewPlan(n, soifft.WithAccuracy(soifft.AccuracyFull))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solver plans: fast B=%d (~%.0f digits), full B=%d (~%.0f digits)\n",
		fast.Taps(), fast.PredictedDigits(), full.Taps(), full.PredictedDigits())

	u := make([]complex128, n)
	res := make([]complex128, n)
	plan := fast
	planName := "fast"
	switched := 0
	for it := 1; it <= 40; it++ {
		// Residual r = f − u'' (second difference via spectral derivative
		// would hide the point; use the same inverse-Laplacian map).
		laplace(u, res)
		for i := range res {
			res[i] = f[i] - res[i]
		}
		rn := norm(res)
		if it == 1 || it%4 == 0 || rn < 1e-12 {
			fmt.Printf("  iter %2d [%4s plan]  residual %.2e\n", it, planName, rn)
		}
		if rn < 1e-4 && plan == fast {
			plan, planName = full, "full"
			switched = it
			fmt.Printf("  -> residual at the fast plan's accuracy floor; switching to full accuracy\n")
		}
		// The *evaluated* residual floors near 1e-7: u's low-frequency
		// components are ~1e10, so u'' = f is recovered through that much
		// cancellation. The solution itself converges far below (checked
		// against the exact spectral solve at the end).
		if rn < 2e-7 && plan == full && it > switched+2 {
			fmt.Printf("converged at iteration %d (switched to full accuracy at %d)\n", it, switched)
			break
		}
		// u += InverseLaplacian(res), applied spectrally with the current
		// SOI plan pair.
		spec := make([]complex128, n)
		if err := plan.Transform(spec, res); err != nil {
			log.Fatal(err)
		}
		for k := 1; k < n; k++ {
			kk := k
			if kk > n/2 {
				kk = n - kk
			}
			w := 2 * math.Pi * float64(kk) / float64(n)
			spec[k] /= complex(-w*w, 0)
		}
		spec[0] = 0
		delta := make([]complex128, n)
		if err := plan.Inverse(delta, spec); err != nil {
			log.Fatal(err)
		}
		// Under-relaxed update keeps several sweeps in play so the
		// precision switch actually matters.
		for i := range u {
			u[i] += 0.9 * delta[i]
		}
	}

	// Verify against the exact spectral solution.
	exact := exactSolution(f)
	fmt.Printf("solution error vs exact spectral solve: %.2e\n",
		signal.RelErrL2(u, exact))
}

// laplace applies u” spectrally at full accuracy (the "operator").
func laplace(u, out []complex128) {
	spec, err := soifft.FFT(u)
	if err != nil {
		log.Fatal(err)
	}
	for k := range spec {
		kk := k
		if kk > n/2 {
			kk = n - kk
		}
		w := 2 * math.Pi * float64(kk) / float64(n)
		spec[k] *= complex(-w*w, 0)
	}
	back, err := soifft.IFFT(spec)
	if err != nil {
		log.Fatal(err)
	}
	copy(out, back)
}

func exactSolution(f []complex128) []complex128 {
	spec, err := soifft.FFT(f)
	if err != nil {
		log.Fatal(err)
	}
	for k := 1; k < n; k++ {
		kk := k
		if kk > n/2 {
			kk = n - kk
		}
		w := 2 * math.Pi * float64(kk) / float64(n)
		spec[k] /= complex(-w*w, 0)
	}
	spec[0] = 0
	out, err := soifft.IFFT(spec)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func norm(x []complex128) float64 {
	var acc float64
	for _, v := range x {
		acc += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(acc)
}
