// Convolution: distributed FFT-based filtering, the use case the paper's
// introduction motivates. With a cached filter spectrum, SOI needs two
// all-to-alls per convolution where the conventional in-order pair needs
// six — the low-communication saving compounds when transforms chain.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"soifft"
	"soifft/internal/signal"
)

func main() {
	const (
		n     = 1 << 16
		ranks = 8
	)
	// Signal: tones plus noise; filter: a 65-tap smoothing kernel.
	src := signal.NoisyTones(n, []int{300, 5000}, []complex128{1, 1}, 0.3, 7)
	h := make([]complex128, n)
	for i := -32; i <= 32; i++ {
		h[(i+n)%n] = complex(1.0/65, 0)
	}

	plan, err := soifft.NewPlan(n, soifft.WithSegments(ranks))
	if err != nil {
		log.Fatal(err)
	}
	spec, err := soifft.FilterSpectrum(h)
	if err != nil {
		log.Fatal(err)
	}
	world, err := soifft.NewWorld(ranks)
	if err != nil {
		log.Fatal(err)
	}

	out := make([]complex128, n)
	if err := plan.Convolve(world, out, src, spec); err != nil {
		log.Fatal(err)
	}
	st := world.Stats()
	fmt.Printf("convolved %d points over %d ranks: %d all-to-alls, %.1f MB exchanged\n",
		n, ranks, st.Alltoalls, float64(st.AlltoallBytes)/1e6)
	fmt.Println("(a conventional in-order distributed FFT pair would need 6 all-to-alls)")

	// Verify against a serial FFT convolution.
	f, _ := soifft.FFT(src)
	for i := range f {
		f[i] *= spec[i]
	}
	want, _ := soifft.IFFT(f)
	var maxErr float64
	for i := range out {
		if d := cmplx.Abs(out[i] - want[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max abs deviation from serial FFT convolution: %.2e\n", maxErr)
}
