// Package soifft is a low-communication 1-D FFT library: a Go
// implementation of the SOI (segment-of-interest) FFT framework of
// Tang, Park, Kim and Petrov, "A framework for low-communication 1-D
// FFT" (SC 2012 Best Paper).
//
// Standard distributed in-order 1-D FFTs perform three all-to-all
// exchanges; the SOI factorization needs exactly one, of (1+β)·N points,
// at the price of an oversampled convolution. On bandwidth-constrained
// systems this wins by up to 3/(1+β) (2.4× at the default β = 1/4).
//
// Three entry points:
//
//   - FFT / IFFT: plain serial transforms of any length (the built-in
//     mixed-radix/Bluestein engine, no SOI machinery).
//   - Plan.Transform: the SOI factorization executed with shared-memory
//     parallelism — the algorithm of the paper on one machine.
//   - Plan.TransformDistributed: the full distributed algorithm over a
//     simulated message-passing World with per-rank data distribution,
//     one halo exchange and a single all-to-all.
//
// Accuracy is tunable (paper Section 7.3): AccuracyFull reaches within
// one decimal digit of a conventional FFT (~290 dB SNR); lower settings
// shrink the convolution for more speed.
package soifft

import (
	"context"
	"fmt"
	"math"

	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/instrument"
	"soifft/internal/window"
)

// Accuracy selects a rung of the paper's accuracy-performance ladder.
type Accuracy int

// Accuracy levels. Full matches the paper's B = 72 configuration
// (≈14.5 digits); each step down shrinks the convolution tap count.
const (
	AccuracyFull Accuracy = iota
	Accuracy270dB
	Accuracy250dB
	Accuracy230dB
	Accuracy200dB
)

func (a Accuracy) preset() window.Preset {
	i := int(a)
	if i < 0 || i >= len(window.Presets) {
		i = 0
	}
	return window.Presets[i]
}

// String names the accuracy level.
func (a Accuracy) String() string { return a.preset().Name }

// Option configures NewPlan.
type Option func(*options)

type options struct {
	segments   int
	mu, nu     int
	taps       int
	accuracy   Accuracy
	workers    int
	useAcc     bool
	family     WindowFamily
	instrument InstrumentLevel
}

// WindowFamily selects the reference window family used to build the
// convolution weights and demodulation samples.
type WindowFamily int

// Window families (see internal/window and paper Sections 4 and 8).
const (
	// WindowAuto designs the paper's two-parameter rectangle⊛Gaussian
	// window — the full-accuracy default.
	WindowAuto WindowFamily = iota
	// WindowGaussian uses the one-parameter Gaussian (≤ ~10 digits at
	// β = 1/4; paper Section 8).
	WindowGaussian
	// WindowKaiser uses the Kaiser–Bessel family: exactly zero
	// truncation error, ~5-7 digits at β = 1/4.
	WindowKaiser
	// WindowCompact uses the C∞ compact-support bump: exactly zero
	// aliasing error, sub-exponential tap decay.
	WindowCompact
)

// WithSegments sets the segment count P (N = M·P). More segments mean
// finer distribution granularity; P must divide N. Defaults to 8, or 1
// if N is small.
func WithSegments(p int) Option { return func(o *options) { o.segments = p } }

// WithOversampling sets β = mu/nu − 1 (default 5/4, i.e. β = 1/4).
func WithOversampling(mu, nu int) Option {
	return func(o *options) { o.mu, o.nu = mu, nu }
}

// WithTaps overrides the convolution tap count B directly (the window is
// designed automatically for the chosen B and β).
func WithTaps(b int) Option { return func(o *options) { o.taps = b } }

// WithAccuracy picks a preset accuracy rung instead of explicit taps.
func WithAccuracy(a Accuracy) Option {
	return func(o *options) { o.accuracy = a; o.useAcc = true }
}

// WithWorkers bounds the goroutines used by shared-memory execution.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithWindow selects the reference window family (default WindowAuto).
func WithWindow(f WindowFamily) Option { return func(o *options) { o.family = f } }

// Plan is a reusable SOI transform plan for a fixed length; it is safe
// for concurrent use.
type Plan struct {
	inner *core.Plan
}

// NewPlan builds an SOI plan for n-point transforms.
func NewPlan(n int, opts ...Option) (*Plan, error) {
	o := options{segments: 0, mu: 5, nu: 4, taps: 72}
	for _, fn := range opts {
		fn(&o)
	}
	if o.segments == 0 {
		o.segments = defaultSegments(n)
	}
	p := core.Params{
		N: n, P: o.segments, Mu: o.mu, Nu: o.nu, B: o.taps, Workers: o.workers,
	}
	if o.useAcc {
		pr := o.accuracy.preset()
		p.B = pr.B
		d := window.ForPreset(pr, p.Beta())
		p.Win = d.Window
	}
	// Shrink B for short segments rather than failing outright.
	if m := nSafeM(n, o.segments); p.B > m && m >= 2 {
		p.B = m
		p.Win = nil // the preset window no longer matches B
	}
	if o.family != WindowAuto {
		w, err := buildFamilyWindow(o.family, p.B, p.Beta())
		if err != nil {
			return nil, err
		}
		p.Win = w
	}
	inner, err := core.NewPlan(p)
	if err != nil {
		return nil, err
	}
	inner.SetRecorder(instrument.New(instrument.Level(o.instrument)))
	return &Plan{inner: inner}, nil
}

func defaultSegments(n int) int {
	for _, p := range []int{8, 4, 2} {
		if n%p == 0 && n/p >= 32 {
			return p
		}
	}
	return 1
}

func nSafeM(n, p int) int {
	if p <= 0 || n%p != 0 {
		return 0
	}
	return n / p
}

// N returns the transform length.
func (p *Plan) N() int { return p.inner.Params().N }

// Segments returns the segment count P.
func (p *Plan) Segments() int { return p.inner.Params().P }

// Oversampling returns β.
func (p *Plan) Oversampling() float64 { return p.inner.Params().Beta() }

// Taps returns the convolution tap count B.
func (p *Plan) Taps() int { return p.inner.Params().B }

// PredictedDigits estimates the decimal digits of accuracy from the
// window metrics (paper Section 4 error characterization).
func (p *Plan) PredictedDigits() float64 { return p.inner.Metrics().Digits() }

// Transform computes dst = DFT(src) via the SOI factorization using
// shared-memory parallelism. dst and src must have length N and must not
// alias.
func (p *Plan) Transform(dst, src []complex128) error {
	return p.inner.Transform(dst, src)
}

// SegmentLen returns the length M = N/P of one frequency segment.
func (p *Plan) SegmentLen() int { return p.inner.M() }

// TransformSegment computes only the s-th frequency segment,
// dst = DFT(src)[s·M : (s+1)·M] — the paper's "segment of interest"
// pursued directly (Fig 1). dst must have length SegmentLen(). Relative
// to a full SOI transform it skips the other P−1 segment FFTs and the
// I⊗F_P batch (one dot product per block instead), leaving one
// convolution pass and a single M'-point FFT; memory for the full
// spectrum is never allocated.
func (p *Plan) TransformSegment(dst, src []complex128, s int) error {
	return p.inner.TransformSegment(dst, src, s)
}

// Inverse computes dst = IDFT(src) (scaled by 1/N) through the SOI
// factorization; Inverse(Transform(x)) == x up to the plan's accuracy.
func (p *Plan) Inverse(dst, src []complex128) error {
	return p.inner.InverseTransform(dst, src)
}

// Config is an immutable snapshot of a plan's resolved parameters —
// everything NewPlan decided, including defaults it filled in and the
// window it designed. Use it instead of reaching into internals.
type Config struct {
	// N is the transform length.
	N int
	// Segments is the segment count P; SegmentLen = N/P.
	Segments   int
	SegmentLen int
	// OversampledLen is M' = (1+β)·SegmentLen, the per-segment working
	// length; OversampledLen·Segments points cross the all-to-all.
	OversampledLen int
	// Mu/Nu is the oversampling ratio in lowest terms; Beta = Mu/Nu − 1.
	Mu, Nu int
	Beta   float64
	// Taps is the convolution tap count B (possibly shrunk from the
	// requested value for short segments).
	Taps int
	// Window names the resolved reference window family ("tau-sigma",
	// "gaussian", "kaiser-bessel", "compact-bump", or the window's own
	// description for custom windows).
	Window string
	// Workers bounds shared-memory parallelism (0 = GOMAXPROCS).
	Workers int
	// PredictedDigits estimates the decimal digits of accuracy from the
	// window metrics (paper Section 4).
	PredictedDigits float64
}

// Config returns the plan's resolved parameter snapshot.
func (p *Plan) Config() Config {
	prm := p.inner.Params()
	name := prm.Win.String()
	if ref, err := windowRefOf(prm.Win); err == nil {
		name = ref.Family
	}
	return Config{
		N:               prm.N,
		Segments:        prm.P,
		SegmentLen:      p.inner.M(),
		OversampledLen:  p.inner.MPrime(),
		Mu:              prm.Mu,
		Nu:              prm.Nu,
		Beta:            prm.Beta(),
		Taps:            prm.B,
		Window:          name,
		Workers:         prm.Workers,
		PredictedDigits: p.inner.Metrics().Digits(),
	}
}

// Internal returns the underlying core plan.
//
// Deprecated: the typed accessors cover what this leaked — use Config
// for parameters, Report for per-stage timing and communication
// counters, and TransformContext/TransformSegmentContext for execution.
// Internal remains only so existing harnesses keep compiling; it will be
// removed in v2.
func (p *Plan) Internal() *core.Plan { return p.inner }

// buildFamilyWindow designs a window of the requested family for (B, β).
func buildFamilyWindow(f WindowFamily, b int, beta float64) (window.Window, error) {
	switch f {
	case WindowGaussian:
		return window.DesignGaussian(b, beta).Window, nil
	case WindowKaiser:
		return window.DesignKaiser(b, beta, 1e3).Window, nil
	case WindowCompact:
		return window.NewCompactBump(beta, float64(b)/2+8)
	default:
		return nil, fmt.Errorf("soifft: unknown window family %d", f)
	}
}

// FFT returns the forward DFT of x (any length; Bluestein handles large
// prime factors) computed by the conventional engine.
func FFT(x []complex128) ([]complex128, error) { return fft.Forward(x) }

// IFFT returns the inverse DFT of x, scaled so IFFT(FFT(x)) == x.
func IFFT(x []complex128) ([]complex128, error) { return fft.Inverse(x) }

// Validate reports whether an (n, segments, oversampling, taps)
// combination is usable, without building tables.
func Validate(n int, opts ...Option) error {
	o := options{segments: 0, mu: 5, nu: 4, taps: 72}
	for _, fn := range opts {
		fn(&o)
	}
	if o.segments == 0 {
		o.segments = defaultSegments(n)
	}
	p := core.Params{N: n, P: o.segments, Mu: o.mu, Nu: o.nu, B: o.taps}
	if o.useAcc {
		p.B = o.accuracy.preset().B
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("soifft: %w", err)
	}
	return nil
}

// TransformBatch applies the forward SOI transform to count contiguous
// vectors: transform i reads src[i*N:(i+1)*N] into dst[i*N:(i+1)*N].
// Plans are safe for concurrent use, so batches may also be split across
// goroutines by the caller.
func (p *Plan) TransformBatch(dst, src []complex128, count int) error {
	return p.TransformBatchContext(context.Background(), dst, src, count)
}

// SelfTest runs a quick built-in accuracy check: it transforms a random
// vector with the SOI plan and with the conventional engine and returns
// the measured decimal digits of agreement. Use it to verify a plan (for
// example one loaded from wisdom) on the current machine.
func (p *Plan) SelfTest() (digits float64, err error) {
	n := p.N()
	src := selfTestInput(n)
	ref, err := fft.Forward(src)
	if err != nil {
		return 0, err
	}
	got := make([]complex128, n)
	if err := p.Transform(got, src); err != nil {
		return 0, err
	}
	var num, den float64
	for i := range ref {
		d := got[i] - ref[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(ref[i])*real(ref[i]) + imag(ref[i])*imag(ref[i])
	}
	if num == 0 {
		return 16, nil
	}
	return -0.5 * math.Log10(num/den), nil
}

// selfTestInput is a deterministic pseudo-random vector (xorshift) so
// SelfTest never depends on math/rand behavior across Go versions.
func selfTestInput(n int) []complex128 {
	v := make([]complex128, n)
	s := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11)/float64(1<<53)*2 - 1
	}
	for i := range v {
		v[i] = complex(next(), next())
	}
	return v
}
