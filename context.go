package soifft

import (
	"context"
	"fmt"

	"soifft/internal/mpi"
)

// TransformContext is Transform with cooperative cancellation: the
// pipeline checks ctx at every stage boundary and returns ctx.Err() when
// it is done. A stage already running completes (stages are pure compute
// and each is a fraction of the transform), so cancellation latency is
// bounded by the longest single stage, not the whole transform.
func (p *Plan) TransformContext(ctx context.Context, dst, src []complex128) error {
	return p.inner.TransformContext(ctx, dst, src)
}

// InverseContext is Inverse with the forward path's cancellation checks.
func (p *Plan) InverseContext(ctx context.Context, dst, src []complex128) error {
	return p.inner.InverseTransformContext(ctx, dst, src)
}

// TransformSegmentContext is TransformSegment with a cancellation check
// between the convolution and the segment FFT.
func (p *Plan) TransformSegmentContext(ctx context.Context, dst, src []complex128, s int) error {
	return p.inner.TransformSegmentContext(ctx, dst, src, s)
}

// TransformBatchContext is TransformBatch with cancellation checks
// between vectors as well as at each transform's stage boundaries, so a
// long batch stops promptly once ctx is done.
func (p *Plan) TransformBatchContext(ctx context.Context, dst, src []complex128, count int) error {
	n := p.N()
	if count < 0 || len(dst) < count*n || len(src) < count*n {
		return fmt.Errorf("soifft: batch of %d x %d needs %d elements, got dst %d src %d: %w",
			count, n, count*n, len(dst), len(src), ErrLength)
	}
	for i := 0; i < count; i++ {
		if err := p.inner.TransformContext(ctx, dst[i*n:(i+1)*n], src[i*n:(i+1)*n]); err != nil {
			return err
		}
	}
	return nil
}

// TransformDistributedContext is TransformDistributed with cancellation
// checks at every rank's phase boundaries: when ctx is done each rank
// stops before its next local phase and the first error (ctx.Err())
// aborts the world. A collective already in flight is not interrupted.
func (p *Plan) TransformDistributedContext(ctx context.Context, w *World, dst, src []complex128) error {
	n := p.N()
	r := w.Ranks()
	if len(dst) != n || len(src) != n {
		return fmt.Errorf("soifft: need length %d, got dst %d src %d: %w", n, len(dst), len(src), ErrLength)
	}
	if err := p.inner.ValidateDistributed(r); err != nil {
		return err
	}
	nLocal := n / r
	return w.inner.Run(func(c *mpi.Comm) error {
		in := src[c.Rank()*nLocal : (c.Rank()+1)*nLocal]
		out := dst[c.Rank()*nLocal : (c.Rank()+1)*nLocal]
		_, err := p.inner.RunDistributed(ctx, c, out, in)
		return err
	})
}

// InverseDistributedContext is InverseDistributed with the forward
// driver's cancellation checks at phase boundaries.
func (p *Plan) InverseDistributedContext(ctx context.Context, w *World, dst, src []complex128) error {
	n := p.N()
	r := w.Ranks()
	if len(dst) != n || len(src) != n {
		return fmt.Errorf("soifft: need length %d, got dst %d src %d: %w", n, len(dst), len(src), ErrLength)
	}
	if err := p.inner.ValidateDistributed(r); err != nil {
		return err
	}
	nLocal := n / r
	return w.inner.Run(func(c *mpi.Comm) error {
		in := src[c.Rank()*nLocal : (c.Rank()+1)*nLocal]
		out := dst[c.Rank()*nLocal : (c.Rank()+1)*nLocal]
		_, err := p.inner.RunDistributedInverse(ctx, c, out, in)
		return err
	})
}
