package soifft

import (
	"math"
	"testing"

	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/signal"
)

func TestPublicPlanTransform(t *testing.T) {
	const n = 1024
	pl, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 1)
	want := make([]complex128, n)
	fft.Direct(want, src)
	got := make([]complex128, n)
	if err := pl.Transform(got, src); err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(got, want); e > 1e-12 {
		t.Errorf("relative error %.3e", e)
	}
	if pl.N() != n || pl.Segments() != 8 || pl.Oversampling() != 0.25 {
		t.Errorf("accessors: N=%d P=%d β=%g", pl.N(), pl.Segments(), pl.Oversampling())
	}
	if pl.PredictedDigits() < 12 {
		t.Errorf("predicted digits %.1f", pl.PredictedDigits())
	}
}

func TestPublicOptions(t *testing.T) {
	pl, err := NewPlan(2048,
		WithSegments(16), WithOversampling(3, 2), WithTaps(24), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Segments() != 16 || pl.Taps() != 24 || pl.Oversampling() != 0.5 {
		t.Errorf("options not applied: P=%d B=%d β=%g", pl.Segments(), pl.Taps(), pl.Oversampling())
	}
}

func TestAccuracyLadder(t *testing.T) {
	const n = 4096
	src := signal.Random(n, 2)
	ref, err := FFT(src)
	if err != nil {
		t.Fatal(err)
	}
	prevSNR := math.Inf(1)
	for _, acc := range []Accuracy{AccuracyFull, Accuracy250dB, Accuracy200dB} {
		pl, err := NewPlan(n, WithAccuracy(acc))
		if err != nil {
			t.Fatalf("%v: %v", acc, err)
		}
		got := make([]complex128, n)
		if err := pl.Transform(got, src); err != nil {
			t.Fatal(err)
		}
		snr := signal.SNRdB(got, ref)
		if snr > prevSNR+10 {
			t.Errorf("%v: SNR %.0f dB out of order (prev %.0f)", acc, snr, prevSNR)
		}
		if snr < 150 {
			t.Errorf("%v: SNR %.0f dB unusably low", acc, snr)
		}
		prevSNR = snr
	}
	// Full accuracy should be within ~2 digits of the conventional FFT.
	plFull, _ := NewPlan(n, WithAccuracy(AccuracyFull))
	got := make([]complex128, n)
	if err := plFull.Transform(got, src); err != nil {
		t.Fatal(err)
	}
	if snr := signal.SNRdB(got, ref); snr < 250 {
		t.Errorf("full accuracy SNR %.0f dB, want ≥ 250 (paper: ~290)", snr)
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	for _, n := range []int{1, 17, 100, 1000, 1009} {
		src := signal.Random(n, int64(n))
		f, err := FFT(src)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IFFT(f)
		if err != nil {
			t.Fatal(err)
		}
		if e := signal.MaxAbsErr(back, src); e > 1e-10 {
			t.Errorf("n=%d: round trip error %.3e", n, e)
		}
	}
}

func TestTransformDistributedPublic(t *testing.T) {
	const n = 2048
	pl, err := NewPlan(n, WithSegments(8), WithTaps(48))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 3)
	want := make([]complex128, n)
	fft.Direct(want, src)
	got := make([]complex128, n)
	if err := pl.TransformDistributed(w, got, src); err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(got, want); e > 1e-10 {
		t.Errorf("relative error %.3e", e)
	}
	st := w.Stats()
	if st.Alltoalls != 1 {
		t.Errorf("all-to-alls = %d, want 1", st.Alltoalls)
	}
	if st.Bytes == 0 || st.Messages == 0 {
		t.Error("expected nonzero traffic")
	}
}

func TestValidatePublic(t *testing.T) {
	if err := Validate(1024); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := Validate(1000, WithSegments(7)); err == nil {
		t.Error("expected error: 7 does not divide 1000")
	}
	if err := Validate(64, WithTaps(100), WithSegments(2)); err == nil {
		t.Error("expected taps error")
	}
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewPlan(1024, WithSegments(7)); err == nil {
		t.Error("expected divisibility error")
	}
}

func TestDistributedArgErrors(t *testing.T) {
	pl, err := NewPlan(1024, WithTaps(16))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(4)
	if err := pl.TransformDistributed(w, make([]complex128, 4), make([]complex128, 1024)); err == nil {
		t.Error("expected length error")
	}
	w3, _ := NewWorld(3)
	buf := make([]complex128, 1024)
	if err := pl.TransformDistributed(w3, buf, buf); err == nil {
		t.Error("expected rank-divisibility error")
	}
}

func TestAccuracyString(t *testing.T) {
	if AccuracyFull.String() == "" || Accuracy(99).String() == "" {
		t.Error("Accuracy.String must never be empty")
	}
}

func TestPublicInverseRoundTrip(t *testing.T) {
	const n = 2048
	pl, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 31)
	freq := make([]complex128, n)
	back := make([]complex128, n)
	if err := pl.Transform(freq, src); err != nil {
		t.Fatal(err)
	}
	if err := pl.Inverse(back, freq); err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(back, src); e > 1e-12 {
		t.Errorf("round trip error %.3e", e)
	}
}

func TestPublicInverseDistributed(t *testing.T) {
	const n = 2048
	pl, err := NewPlan(n, WithTaps(48))
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 32)
	freq, err := FFT(src)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(4)
	back := make([]complex128, n)
	if err := pl.InverseDistributed(w, back, freq); err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(back, src); e > 1e-10 {
		t.Errorf("distributed inverse error %.3e", e)
	}
	if st := w.Stats(); st.Alltoalls != 1 {
		t.Errorf("inverse used %d all-to-alls, want 1", st.Alltoalls)
	}
}

func TestPublicSegment(t *testing.T) {
	const n = 4096
	pl, err := NewPlan(n, WithSegments(8), WithTaps(48))
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 44)
	full := make([]complex128, n)
	if err := pl.Transform(full, src); err != nil {
		t.Fatal(err)
	}
	m := pl.SegmentLen()
	if m != n/8 {
		t.Fatalf("SegmentLen = %d", m)
	}
	seg := make([]complex128, m)
	if err := pl.TransformSegment(seg, src, 5); err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(seg, full[5*m:6*m]); e > 1e-11 {
		t.Errorf("segment rel err %.3e", e)
	}
}

func TestPublicConvolve(t *testing.T) {
	const n = 2048
	pl, err := NewPlan(n, WithTaps(48))
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 61)
	h := signal.Random(n, 62)
	spec, err := FilterSpectrum(h)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(4)
	got := make([]complex128, n)
	if err := pl.Convolve(w, got, src, spec); err != nil {
		t.Fatal(err)
	}
	// Reference: serial FFT convolution.
	f, _ := FFT(src)
	for i := range f {
		f[i] *= spec[i]
	}
	want, _ := IFFT(f)
	if e := signal.RelErrL2(got, want); e > 1e-9 {
		t.Errorf("convolve rel err %.3e", e)
	}
	if st := w.Stats(); st.Alltoalls != 2 {
		t.Errorf("convolve used %d all-to-alls, want 2", st.Alltoalls)
	}
	if err := pl.Convolve(w, got, src, spec[:10]); err == nil {
		t.Error("expected filter length error")
	}
}

func TestTransformBatch(t *testing.T) {
	const n, count = 1024, 3
	pl, err := NewPlan(n, WithTaps(32))
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n*count, 71)
	want := make([]complex128, n*count)
	for i := 0; i < count; i++ {
		if err := pl.Transform(want[i*n:(i+1)*n], src[i*n:(i+1)*n]); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]complex128, n*count)
	if err := pl.TransformBatch(got, src, count); err != nil {
		t.Fatal(err)
	}
	if e := signal.MaxAbsErr(got, want); e != 0 {
		t.Errorf("batch differs by %.3e", e)
	}
	if err := pl.TransformBatch(got[:10], src, count); err == nil {
		t.Error("expected short-buffer error")
	}
}

func TestPublicSegmentDistributed(t *testing.T) {
	const n = 2048
	pl, err := NewPlan(n, WithTaps(32))
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 81)
	full := make([]complex128, n)
	if err := pl.Transform(full, src); err != nil {
		t.Fatal(err)
	}
	w, _ := NewWorld(4)
	seg, err := pl.TransformSegmentDistributed(w, src, 6)
	if err != nil {
		t.Fatal(err)
	}
	m := pl.SegmentLen()
	if e := signal.MaxAbsErr(seg, full[6*m:7*m]); e > 1e-10 {
		t.Errorf("distributed segment differs by %.3e", e)
	}
	if a := w.Stats().Alltoalls; a != 0 {
		t.Errorf("segment query used %d all-to-alls, want 0", a)
	}
}

func TestSelfTest(t *testing.T) {
	pl, err := NewPlan(4096)
	if err != nil {
		t.Fatal(err)
	}
	digits, err := pl.SelfTest()
	if err != nil {
		t.Fatal(err)
	}
	if digits < 12 {
		t.Errorf("self test reports %.1f digits for the full-accuracy plan", digits)
	}
	low, err := NewPlan(4096, WithAccuracy(Accuracy200dB))
	if err != nil {
		t.Fatal(err)
	}
	lowDigits, err := low.SelfTest()
	if err != nil {
		t.Fatal(err)
	}
	if lowDigits >= digits {
		t.Errorf("low-accuracy plan (%.1f) should self-test below full (%.1f)", lowDigits, digits)
	}
}

func TestWithWindowFamilies(t *testing.T) {
	const n = 2048
	src := signal.Random(n, 85)
	ref, err := FFT(src)
	if err != nil {
		t.Fatal(err)
	}
	type band struct{ lo, hi float64 }
	cases := map[WindowFamily]band{
		WindowAuto:     {12, 17},
		WindowGaussian: {6, 12},
		WindowKaiser:   {3, 9},
		WindowCompact:  {2, 8},
	}
	for fam, b := range cases {
		pl, err := NewPlan(n, WithWindow(fam), WithTaps(48))
		if err != nil {
			t.Fatalf("family %d: %v", fam, err)
		}
		got := make([]complex128, n)
		if err := pl.Transform(got, src); err != nil {
			t.Fatal(err)
		}
		digits := signal.Digits(signal.RelErrL2(got, ref))
		if digits < b.lo || digits > b.hi {
			t.Errorf("family %d: %.1f digits outside [%g, %g]", fam, digits, b.lo, b.hi)
		}
	}
	if _, err := NewPlan(n, WithWindow(WindowFamily(99))); err == nil {
		t.Error("expected unknown family error")
	}
}

func TestRunSPMD(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Ranks() != 3 {
		t.Fatalf("Ranks = %d", w.Ranks())
	}
	sum := make([]complex128, 3)
	err = w.RunSPMD(func(c *mpi.Comm) error {
		sum[c.Rank()] = c.Allreduce(complex(1, 0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range sum {
		if v != 3 {
			t.Errorf("rank %d: allreduce %v", r, v)
		}
	}
}
