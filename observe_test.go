package soifft_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"soifft"
	"soifft/internal/signal"
)

// TestReportDistributedCommVolume is the ground-truth check on the
// communication counters: a distributed SOI transform over R ranks must
// record exactly one all-to-all carrying 16·(1+β)·N·(R−1)/R bytes of
// inter-rank payload — the analytic volume the paper's 3/(1+β) advantage
// rests on — and the plan's own counters must agree with the world's
// independent fabric statistics.
func TestReportDistributedCommVolume(t *testing.T) {
	const (
		n     = 4096
		ranks = 4
	)
	p, err := soifft.NewPlan(n, soifft.WithSegments(8), soifft.WithTaps(48),
		soifft.WithInstrumentation(soifft.InstrumentCounters))
	if err != nil {
		t.Fatal(err)
	}
	w, err := soifft.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 1)
	dst := make([]complex128, n)
	if err := p.TransformDistributed(w, dst, src); err != nil {
		t.Fatal(err)
	}

	rep := p.Report()
	// μ/ν = 5/4 → N' = 5120; inter-rank payload excludes each rank's
	// self-chunk: 16·5120·3/4 = 61440 bytes.
	nPrime := n * 5 / 4
	want := int64(16 * nPrime * (ranks - 1) / ranks)
	if rep.Comm.Alltoalls != 1 {
		t.Errorf("alltoalls = %d, want 1", rep.Comm.Alltoalls)
	}
	if rep.Comm.AlltoallBytes != want {
		t.Errorf("alltoall bytes = %d, want %d", rep.Comm.AlltoallBytes, want)
	}
	if got := w.Stats().AlltoallBytes; rep.Comm.AlltoallBytes != got {
		t.Errorf("plan counted %d alltoall bytes, world counted %d", rep.Comm.AlltoallBytes, got)
	}
	if rep.Transforms != ranks {
		t.Errorf("transforms = %d, want %d (one per rank)", rep.Transforms, ranks)
	}

	ref, err := soifft.FFT(src)
	if err != nil {
		t.Fatal(err)
	}
	if re := signal.RelErrL2(dst, ref); re > 1e-6 {
		t.Errorf("distributed result off: rel err %g", re)
	}
}

// TestReportStageTimers checks the per-stage data a timer-level plan
// accumulates for shared-memory transforms.
func TestReportStageTimers(t *testing.T) {
	p, err := soifft.NewPlan(4096, soifft.WithSegments(8), soifft.WithTaps(48),
		soifft.WithInstrumentation(soifft.InstrumentTimers))
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(4096, 2)
	dst := make([]complex128, 4096)
	for i := 0; i < 3; i++ {
		if err := p.Transform(dst, src); err != nil {
			t.Fatal(err)
		}
	}

	rep := p.Report()
	if rep.Level != soifft.InstrumentTimers {
		t.Errorf("level = %v, want timers", rep.Level)
	}
	if rep.Transforms != 3 {
		t.Errorf("transforms = %d, want 3", rep.Transforms)
	}
	seen := map[string]soifft.StageReport{}
	for _, st := range rep.Stages {
		seen[st.Stage] = st
	}
	for _, name := range []string{"convolve", "exchange", "segment_fft", "demod"} {
		st, ok := seen[name]
		if !ok || st.Calls != 3 {
			t.Errorf("stage %s: calls = %d, want 3", name, st.Calls)
			continue
		}
		if st.Wall <= 0 {
			t.Errorf("stage %s: wall = %v, want > 0 at timer level", name, st.Wall)
		}
	}
	if conv := seen["convolve"]; conv.Flops <= 0 || conv.GFlopsPerSec <= 0 {
		t.Errorf("convolve: flops %d, rate %g — want positive", conv.Flops, conv.GFlopsPerSec)
	}
	if occ := seen["convolve"].Occupancy; occ < 0 || occ > 1.000001 {
		t.Errorf("convolve occupancy %g outside [0,1]", occ)
	}

	// String() renders every active stage.
	s := rep.String()
	for _, name := range []string{"convolve", "segment_fft", "demod"} {
		if !strings.Contains(s, name) {
			t.Errorf("Report.String() missing stage %s:\n%s", name, s)
		}
	}

	p.ResetReport()
	if after := p.Report(); after.Transforms != 0 || after.Level != soifft.InstrumentTimers {
		t.Errorf("after reset: transforms=%d level=%v", after.Transforms, after.Level)
	}
}

// TestReportOffByDefault: an uninstrumented plan reports zeros and level
// off.
func TestReportOffByDefault(t *testing.T) {
	p, err := soifft.NewPlan(1024, soifft.WithSegments(4), soifft.WithTaps(24))
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(1024, 3)
	dst := make([]complex128, 1024)
	if err := p.Transform(dst, src); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	if rep.Level != soifft.InstrumentOff || rep.Transforms != 0 {
		t.Errorf("uninstrumented plan recorded data: level=%v transforms=%d", rep.Level, rep.Transforms)
	}
	if p.InstrumentationLevel() != soifft.InstrumentOff {
		t.Errorf("InstrumentationLevel = %v, want off", p.InstrumentationLevel())
	}

	// Attach, observe, detach.
	p.Instrument(soifft.InstrumentCounters)
	if err := p.Transform(dst, src); err != nil {
		t.Fatal(err)
	}
	if rep := p.Report(); rep.Transforms != 1 {
		t.Errorf("after Instrument(counters): transforms=%d, want 1", rep.Transforms)
	}
	p.Instrument(soifft.InstrumentOff)
	if rep := p.Report(); rep.Transforms != 0 {
		t.Errorf("after detach: transforms=%d, want 0", rep.Transforms)
	}
}

// TestWriteMetrics checks the Prometheus text rendering.
func TestWriteMetrics(t *testing.T) {
	p, err := soifft.NewPlan(1024, soifft.WithSegments(4), soifft.WithTaps(24),
		soifft.WithInstrumentation(soifft.InstrumentCounters))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, 1024)
	if err := p.Transform(dst, signal.Random(1024, 4)); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := p.WriteMetrics(&b, map[string]string{"plan": "test"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`soifft_transforms_total{plan="test"} 1`,
		`stage="convolve"`,
		"# TYPE soifft_transforms_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestConfigSnapshot: Config must expose the resolved parameters the
// deprecated Internal() escape hatch was used for.
func TestConfigSnapshot(t *testing.T) {
	p, err := soifft.NewPlan(4096, soifft.WithSegments(8), soifft.WithTaps(48))
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.N != 4096 || cfg.Segments != 8 || cfg.SegmentLen != 512 {
		t.Errorf("shape: N=%d P=%d M=%d", cfg.N, cfg.Segments, cfg.SegmentLen)
	}
	if cfg.Mu != 5 || cfg.Nu != 4 || math.Abs(cfg.Beta-0.25) > 1e-15 {
		t.Errorf("oversampling: mu=%d nu=%d beta=%g", cfg.Mu, cfg.Nu, cfg.Beta)
	}
	if cfg.OversampledLen != 640 { // (1+β)·M = 5/4·512
		t.Errorf("OversampledLen = %d, want 640", cfg.OversampledLen)
	}
	if cfg.Taps != 48 {
		t.Errorf("Taps = %d, want 48", cfg.Taps)
	}
	if cfg.Window == "" {
		t.Error("Window is empty")
	}
	if cfg.PredictedDigits <= 0 {
		t.Errorf("PredictedDigits = %g, want > 0", cfg.PredictedDigits)
	}
	// The deprecated escape hatch must keep working until v2.
	if p.Internal() == nil {
		t.Error("Internal() returned nil")
	}
}

// TestErrorTaxonomy: every validation failure must be classifiable with
// errors.Is against the exported sentinels.
func TestErrorTaxonomy(t *testing.T) {
	p, err := soifft.NewPlan(1024, soifft.WithSegments(4), soifft.WithTaps(24))
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(1024, 5)
	dst := make([]complex128, 1024)

	if err := p.Transform(dst[:100], src); !errors.Is(err, soifft.ErrLength) {
		t.Errorf("short dst: %v, want ErrLength", err)
	}
	if err := p.Transform(src, src); !errors.Is(err, soifft.ErrAlias) {
		t.Errorf("aliased dst: %v, want ErrAlias", err)
	}
	seg := make([]complex128, p.SegmentLen())
	if err := p.TransformSegment(seg, src, 99); !errors.Is(err, soifft.ErrSegmentRange) {
		t.Errorf("segment 99: %v, want ErrSegmentRange", err)
	}
	if err := p.TransformSegment(seg, src, -1); !errors.Is(err, soifft.ErrSegmentRange) {
		t.Errorf("segment -1: %v, want ErrSegmentRange", err)
	}
	if _, err := soifft.RFFT(make([]float64, 7)); !errors.Is(err, soifft.ErrLength) {
		t.Errorf("odd RFFT: %v, want ErrLength", err)
	}

	// Plan/world mismatch: 4 segments cannot be split over 3 ranks.
	w, err := soifft.NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TransformDistributed(w, dst, src); !errors.Is(err, soifft.ErrPlanMismatch) {
		t.Errorf("3 ranks over P=4: %v, want ErrPlanMismatch", err)
	}
}

// TestContextCancellation: a cancelled context stops the transform with
// its own error.
func TestContextCancellation(t *testing.T) {
	p, err := soifft.NewPlan(1024, soifft.WithSegments(4), soifft.WithTaps(24))
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(1024, 6)
	dst := make([]complex128, 1024)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.TransformContext(ctx, dst, src); !errors.Is(err, context.Canceled) {
		t.Errorf("TransformContext on cancelled ctx: %v, want context.Canceled", err)
	}
	if err := p.InverseContext(ctx, dst, src); !errors.Is(err, context.Canceled) {
		t.Errorf("InverseContext: %v, want context.Canceled", err)
	}
	seg := make([]complex128, p.SegmentLen())
	if err := p.TransformSegmentContext(ctx, seg, src, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("TransformSegmentContext: %v, want context.Canceled", err)
	}
	if err := p.TransformBatchContext(ctx, dst, src, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("TransformBatchContext: %v, want context.Canceled", err)
	}
	w, err := soifft.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TransformDistributedContext(ctx, w, dst, src); !errors.Is(err, context.Canceled) {
		t.Errorf("TransformDistributedContext: %v, want context.Canceled", err)
	}

	// A live context must not interfere.
	if err := p.TransformContext(context.Background(), dst, src); err != nil {
		t.Errorf("TransformContext with live ctx: %v", err)
	}
}

// TestRFFTAgainstFFT: the half spectrum must equal the first n/2+1 bins
// of the complex FFT of the same (real) input, and IRFFT must invert it.
func TestRFFTAgainstFFT(t *testing.T) {
	const n = 1024
	x := make([]float64, n)
	xc := make([]complex128, n)
	for i := range x {
		x[i] = math.Sin(0.37*float64(i)) + 0.25*math.Cos(0.011*float64(i)*float64(i))
		xc[i] = complex(x[i], 0)
	}

	half, err := soifft.RFFT(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(half) != n/2+1 {
		t.Fatalf("half spectrum length %d, want %d", len(half), n/2+1)
	}
	ref, err := soifft.FFT(xc)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= n/2; k++ {
		if d := cmplxAbs(half[k] - ref[k]); d > 1e-9 {
			t.Fatalf("bin %d: RFFT %v vs FFT %v (|Δ| = %g)", k, half[k], ref[k], d)
		}
	}
	// DC and Nyquist are purely real for real input.
	if imag(half[0]) != 0 || math.Abs(imag(half[n/2])) > 1e-9 {
		t.Errorf("DC/Nyquist not real: %v, %v", half[0], half[n/2])
	}

	back, err := soifft.IRFFT(half)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := math.Abs(back[i] - x[i]); d > 1e-10 {
			t.Fatalf("IRFFT[%d] = %g, want %g", i, back[i], x[i])
		}
	}
}

// TestRealPlanReuse: NewRealPlan caches by length, and the plan validates
// argument lengths with typed errors.
func TestRealPlanReuse(t *testing.T) {
	p1, err := soifft.NewRealPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := soifft.NewRealPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("NewRealPlan(256) did not return the cached plan")
	}
	if p1.N() != 256 {
		t.Errorf("N() = %d", p1.N())
	}
	if err := p1.Forward(make([]complex128, 10), make([]float64, 256)); !errors.Is(err, soifft.ErrLength) {
		t.Errorf("short dst: %v, want ErrLength", err)
	}
	if err := p1.Inverse(make([]float64, 256), make([]complex128, 10)); !errors.Is(err, soifft.ErrLength) {
		t.Errorf("short spectrum: %v, want ErrLength", err)
	}
	if _, err := soifft.NewRealPlan(0); !errors.Is(err, soifft.ErrLength) {
		t.Errorf("zero length: %v, want ErrLength", err)
	}
	if _, err := soifft.IRFFT(make([]complex128, 1)); !errors.Is(err, soifft.ErrLength) {
		t.Errorf("1-bin IRFFT: %v, want ErrLength", err)
	}
}

// TestInstrumentationOffOverheadGuard bounds the cost of the disabled
// instrumentation path: a plan built with WithInstrumentation(off) must
// run within 1.5× of a plain plan (best of several runs — a deliberately
// lenient bound so scheduler noise cannot fail CI; the precise number,
// historically ~0–2%, comes from the BenchmarkObservability pair).
func TestInstrumentationOffOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	const n = 8192
	build := func(opts ...soifft.Option) *soifft.Plan {
		opts = append(opts, soifft.WithSegments(8), soifft.WithTaps(48))
		p, err := soifft.NewPlan(n, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	plain := build()
	off := build(soifft.WithInstrumentation(soifft.InstrumentOff))
	src := signal.Random(n, 7)
	dst := make([]complex128, n)

	best := func(p *soifft.Plan) time.Duration {
		bestD := time.Duration(math.MaxInt64)
		for i := 0; i < 10; i++ {
			t0 := time.Now()
			if err := p.Transform(dst, src); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	best(plain) // warm caches before measuring
	dPlain, dOff := best(plain), best(off)
	if float64(dOff) > 1.5*float64(dPlain) {
		t.Errorf("instrumentation-off overhead: plain %v, off %v (>1.5x)", dPlain, dOff)
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}
