package soifft_test

import (
	"fmt"
	"math/cmplx"

	"soifft"
	"soifft/internal/signal"
)

// ExampleNewPlan demonstrates the basic shared-memory transform.
func ExampleNewPlan() {
	const n = 4096
	plan, err := soifft.NewPlan(n)
	if err != nil {
		panic(err)
	}
	src := signal.Tones(n, []int{7}, []complex128{1}) // one pure tone
	dst := make([]complex128, n)
	if err := plan.Transform(dst, src); err != nil {
		panic(err)
	}
	// The spectrum peaks at bin 7 with magnitude N.
	fmt.Printf("|X[7]| = %.0f, segments = %d, beta = %.2f\n",
		abs(dst[7]), plan.Segments(), plan.Oversampling())
	// Output: |X[7]| = 4096, segments = 8, beta = 0.25
}

// ExamplePlan_TransformDistributed runs the same transform over
// simulated cluster ranks and counts the single all-to-all.
func ExamplePlan_TransformDistributed() {
	const n = 4096
	plan, err := soifft.NewPlan(n)
	if err != nil {
		panic(err)
	}
	world, err := soifft.NewWorld(4)
	if err != nil {
		panic(err)
	}
	src := signal.Random(n, 1)
	dst := make([]complex128, n)
	if err := plan.TransformDistributed(world, dst, src); err != nil {
		panic(err)
	}
	fmt.Printf("all-to-alls: %d\n", world.Stats().Alltoalls)
	// Output: all-to-alls: 1
}

// ExamplePlan_TransformSegment computes one frequency segment directly.
func ExamplePlan_TransformSegment() {
	const n = 4096
	plan, err := soifft.NewPlan(n)
	if err != nil {
		panic(err)
	}
	src := signal.Tones(n, []int{1000}, []complex128{2}) // tone in segment 1
	seg := make([]complex128, plan.SegmentLen())
	if err := plan.TransformSegment(seg, src, 1); err != nil {
		panic(err)
	}
	// Bin 1000 lives at offset 1000 − SegmentLen within segment 1.
	fmt.Printf("|X[1000]| = %.0f\n", abs(seg[1000-plan.SegmentLen()]))
	// Output: |X[1000]| = 8192
}

// ExampleAccuracy shows the accuracy-performance ladder.
func ExampleAccuracy() {
	for _, a := range []soifft.Accuracy{soifft.AccuracyFull, soifft.Accuracy230dB} {
		fmt.Println(a)
	}
	// Output:
	// full~290dB
	// ~230dB
}

func abs(z complex128) float64 { return cmplx.Abs(z) }

// ExamplePlan_Convolve filters a distributed signal with two all-to-alls.
func ExamplePlan_Convolve() {
	const n = 4096
	plan, err := soifft.NewPlan(n)
	if err != nil {
		panic(err)
	}
	world, err := soifft.NewWorld(4)
	if err != nil {
		panic(err)
	}
	// Identity filter: spectrum of a unit impulse is all ones.
	h := make([]complex128, n)
	h[0] = 1
	spec, err := soifft.FilterSpectrum(h)
	if err != nil {
		panic(err)
	}
	src := signal.Tones(n, []int{5}, []complex128{1})
	out := make([]complex128, n)
	if err := plan.Convolve(world, out, src, spec); err != nil {
		panic(err)
	}
	fmt.Printf("all-to-alls: %d, |out[0]-src[0]| < 1e-9: %v\n",
		world.Stats().Alltoalls, abs(out[0]-src[0]) < 1e-9)
	// Output: all-to-alls: 2, |out[0]-src[0]| < 1e-9: true
}
