package soifft_test

import (
	"bytes"
	"sync"
	"testing"

	"soifft"
)

// TestKeyOfMatchesPlanKey checks that the key computed from options
// (without building) agrees with the key of the built plan, across the
// defaulting rules: default segments, accuracy presets, tap shrinking,
// window families.
func TestKeyOfMatchesPlanKey(t *testing.T) {
	cases := []struct {
		name string
		n    int
		opts []soifft.Option
	}{
		{"defaults", 4096, nil},
		{"explicit", 2048, []soifft.Option{soifft.WithSegments(8), soifft.WithTaps(48)}},
		{"accuracy", 4096, []soifft.Option{soifft.WithAccuracy(soifft.Accuracy230dB)}},
		{"shrunk-taps", 256, []soifft.Option{soifft.WithSegments(8), soifft.WithTaps(72)}},
		{"gaussian", 2048, []soifft.Option{soifft.WithSegments(8), soifft.WithTaps(32), soifft.WithWindow(soifft.WindowGaussian)}},
		{"kaiser", 2048, []soifft.Option{soifft.WithSegments(8), soifft.WithTaps(32), soifft.WithWindow(soifft.WindowKaiser)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := soifft.NewPlan(tc.n, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := p.Key(), soifft.KeyOf(tc.n, tc.opts...); got != want {
				t.Errorf("Plan.Key() = %v, KeyOf = %v", got, want)
			}
		})
	}
}

// TestWisdomCachePlanReuse round-trips a plan through WriteWisdom → a
// serve-side plan cache → Transform: the cached plan must be reused (hit
// counter increments) and its results must match a cold plan
// bit-for-bit.
func TestWisdomCachePlanReuse(t *testing.T) {
	const n = 2048
	opts := []soifft.Option{soifft.WithSegments(8), soifft.WithTaps(48)}
	cold, err := soifft.NewPlan(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cold.WriteWisdom(&buf); err != nil {
		t.Fatal(err)
	}

	cache := soifft.NewPlanCache(4)
	warmed, err := cache.WarmWisdom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Size != 1 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("after warm: stats %+v", st)
	}

	// A request shaped like the original NewPlan call must hit the
	// warmed entry — no rebuild.
	got, hit, err := cache.Get(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatalf("expected warm hit for key %v", soifft.KeyOf(n, opts...))
	}
	if got != warmed {
		t.Fatal("cache returned a different plan than the warmed one")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("after one lookup: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if len(st.PerPlan) != 1 || st.PerPlan[0].Hits != 1 {
		t.Fatalf("per-plan stats %+v", st.PerPlan)
	}

	// Bit-for-bit: the wisdom-rebuilt cached plan and the cold plan
	// compute identical spectra.
	src := make([]complex128, n)
	for i := range src {
		src[i] = complex(float64(i%17)-8, float64(i%5)-2)
	}
	want := make([]complex128, n)
	if err := cold.Transform(want, src); err != nil {
		t.Fatal(err)
	}
	have := make([]complex128, n)
	if err := got.Transform(have, src); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if have[i] != want[i] {
			t.Fatalf("spectrum differs at %d: cached %v cold %v", i, have[i], want[i])
		}
	}

	// Further lookups keep incrementing the hit counter.
	if _, hit, _ := cache.Get(n, opts...); !hit {
		t.Fatal("second lookup missed")
	}
	if st := cache.Stats(); st.Hits != 2 {
		t.Fatalf("hits = %d, want 2", st.Hits)
	}
}

// TestPlanCacheEvictionAndCoalescing exercises LRU eviction and the
// single-build guarantee for concurrent misses.
func TestPlanCacheEvictionAndCoalescing(t *testing.T) {
	cache := soifft.NewPlanCache(2)
	for _, n := range []int{512, 1024, 2048} {
		if _, _, err := cache.Get(n, soifft.WithSegments(4), soifft.WithTaps(24)); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 inserts into cap-2 cache: %+v", st)
	}
	// The evicted (oldest) entry misses again.
	if _, hit, err := cache.Get(512, soifft.WithSegments(4), soifft.WithTaps(24)); err != nil || hit {
		t.Fatalf("evicted entry: hit=%v err=%v", hit, err)
	}

	// Concurrent misses for one key coalesce into a single build.
	c2 := soifft.NewPlanCache(4)
	const goroutines = 8
	plans := make([]*soifft.Plan, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := c2.Get(1024, soifft.WithSegments(8), soifft.WithTaps(32))
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent gets returned distinct plans")
		}
	}
	if st := c2.Stats(); st.Misses != 1 {
		t.Fatalf("concurrent gets built %d times", st.Misses)
	}
}
