package soifft

import "soifft/internal/core"

// Sentinel errors of the execution surface. Transform, Inverse,
// TransformSegment, TransformBatch, the Distributed variants and
// Convolve wrap exactly one of these in every validation failure, so
// callers classify with errors.Is instead of matching message text:
//
//	if errors.Is(err, soifft.ErrLength) { ... caller sized a buffer wrong ... }
//
// Errors born from a cancelled context are ctx.Err() (context.Canceled
// or context.DeadlineExceeded), not members of this taxonomy; transport
// failures of TCP mesh runs are *mpinet.TransportError values.
var (
	// ErrLength reports a dst/src/filter slice whose length does not
	// match what the plan requires.
	ErrLength = core.ErrLength
	// ErrAlias reports dst and src sharing backing storage where the
	// pipeline requires distinct buffers.
	ErrAlias = core.ErrAlias
	// ErrSegmentRange reports a segment index outside [0, Segments).
	ErrSegmentRange = core.ErrSegmentRange
	// ErrPlanMismatch reports an execution shape the plan cannot serve:
	// a world size that does not divide the plan's segments or row
	// groups, a halo larger than the neighbour blocks, or a root rank
	// outside the world.
	ErrPlanMismatch = core.ErrPlanMismatch
)
