package main

import (
	"testing"

	"soifft/internal/loadgen"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("n=4096 p=8 b=32 w=3; n=2048 w=1; n=1024 mu=5 nu=4 acc=2")
	if err != nil {
		t.Fatal(err)
	}
	want := []loadgen.Spec{
		{N: 4096, Segments: 8, Taps: 32, Accuracy: -1, Weight: 3},
		{N: 2048, Accuracy: -1, Weight: 1},
		{N: 1024, Mu: 5, Nu: 4, Accuracy: 2, Weight: 1},
	}
	if len(mix) != len(want) {
		t.Fatalf("parsed %d specs, want %d", len(mix), len(want))
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, mix[i], want[i])
		}
	}
}

func TestParseMixErrors(t *testing.T) {
	for _, bad := range []string{
		"",               // empty mix
		"p=8",            // n missing
		"n=0",            // n not positive
		"n=4096 q=2",     // unknown key
		"n=4096 b",       // not key=value
		"n=4096 b=heavy", // not a number
	} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted, want error", bad)
		}
	}
}
