// Command soiload drives a soiserve or soigate endpoint with an
// open-loop Poisson workload and prints an SLO report (latency
// percentiles, per-status counts, achieved throughput).
//
//	soiload -addr 127.0.0.1:7090 -rate 500 -duration 10s \
//	    -mix "n=4096 b=32 w=3; n=2048 w=1" -check -json slo.json
//
// The mix is a semicolon-separated list of plan shapes; each shape is
// space-separated key=value pairs: n (length, required), p (segments),
// b (taps), acc (accuracy rung), w (relative weight). -check verifies
// every response bit-for-bit against a locally computed reference
// spectrum — zero tolerance for corrupted spectra, the invariant the
// failover chaos suite leans on.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"soifft/internal/loadgen"
)

func main() {
	fs := flag.NewFlagSet("soiload", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7090", "endpoint under test (gateway or single replica)")
	rate := fs.Float64("rate", 200, "open-loop Poisson arrival rate, requests/second")
	duration := fs.Duration("duration", 10*time.Second, "arrival-generation window")
	inflightCap := fs.Int("inflight", 64, "max concurrent outstanding requests; excess arrivals are dropped, not queued")
	mixFlag := fs.String("mix", "n=4096", "plan mix: 'n=4096 p=8 b=32 w=3; n=2048 w=1'")
	seed := fs.Int64("seed", 1, "PRNG seed for arrivals and mix draws")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline")
	check := fs.Bool("check", false, "bit-check every response against a local reference spectrum")
	warmup := fs.Bool("warmup", true, "send one request per mix entry before the measured window")
	jsonOut := fs.String("json", "", "also write the report as JSON to this file")
	_ = fs.Parse(os.Args[1:])

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fail(err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancel()
	res, err := loadgen.Run(ctx, loadgen.Config{
		Addr: *addr, Rate: *rate, Duration: *duration,
		MaxInflight: *inflightCap, Mix: mix, Seed: *seed,
		RequestTimeout: *timeout, BitCheck: *check, Warmup: *warmup,
	})
	if err != nil {
		fail(err)
	}
	fmt.Print(res.String())
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fail(err)
		}
		if err := res.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if res.Corrupted > 0 || res.Failed > 0 {
		os.Exit(1)
	}
}

// parseMix parses the -mix grammar into loadgen specs.
func parseMix(s string) ([]loadgen.Spec, error) {
	var mix []loadgen.Spec
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		sp := loadgen.Spec{Accuracy: -1, Weight: 1}
		for _, kv := range strings.Fields(entry) {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("mix entry %q: want key=value, got %q", entry, kv)
			}
			n, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("mix entry %q: %s=%q is not a number", entry, key, val)
			}
			switch key {
			case "n":
				sp.N = int(n)
			case "p":
				sp.Segments = int(n)
			case "mu":
				sp.Mu = int(n)
			case "nu":
				sp.Nu = int(n)
			case "b":
				sp.Taps = int(n)
			case "acc":
				sp.Accuracy = int(n)
			case "w":
				sp.Weight = n
			default:
				return nil, fmt.Errorf("mix entry %q: unknown key %q (want n, p, mu, nu, b, acc or w)", entry, key)
			}
		}
		if sp.N <= 0 {
			return nil, fmt.Errorf("mix entry %q: n is required and must be positive", entry)
		}
		mix = append(mix, sp)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "soiload:", err)
	os.Exit(1)
}
