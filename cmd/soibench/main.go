// Command soibench regenerates every table and figure of the paper's
// evaluation (Section 7) as text tables.
//
// Usage:
//
//	soibench [-experiment all|table1|fig5|fig6|fig7|fig8|fig9|snr|measured|
//	          ablate-beta|ablate-window|ablate-segments|ablate-opcount]
//	         [-points-per-node N] [-go-rates] [-measure-points N]
//
// Compute rates default to the paper's node (Table 1 hardware at the
// Section 7.4 efficiencies); -go-rates calibrates this machine's Go
// kernels instead. Wire times always come from the interconnect models in
// internal/netsim.
package main

import (
	"flag"
	"fmt"
	"os"

	"soifft/internal/bench"
	"soifft/internal/netsim"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run")
	ppn := flag.Int64("points-per-node", 1<<28, "weak-scaling points per node for the models")
	goRates := flag.Bool("go-rates", false, "calibrate compute rates from this machine's Go kernels instead of the paper's node")
	asCSV := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	measureN := flag.Int("measure-points", 1<<18, "points per rank for the real in-process runs")
	report := flag.Bool("report", false, "run an instrumented distributed transform and print the observability report (stage timings, measured vs predicted comm volume), then exit")
	ranks := flag.Int("ranks", 4, "in-process ranks for -report, -trace and -bench-json")
	traceOut := flag.String("trace", "", "run one traced distributed transform and write its Perfetto timeline JSON here (open in ui.perfetto.dev), then exit")
	benchJSON := flag.String("bench-json", "", "measure distributed transforms across sizes and write a machine-readable summary here (e.g. BENCH_soi.json), then exit")
	benchBase := flag.String("bench-baseline", "", "with -bench-json: committed baseline report to compare against; exit 1 on regression")
	benchTol := flag.Float64("bench-tol", 0.10, "with -bench-baseline: allowed ns/op slowdown before the gate fails (0.10 = 10%)")
	overlapTol := flag.Float64("overlap-tol", 0.10, "with -bench-baseline: allowed relative loss of streamed-exchange overlap before the gate fails (0.10 = hides 10% less of the wire than the baseline); applies only to runs whose baseline overlap was meaningful")
	flag.Parse()

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		err = bench.TracedRun(f, *measureN, *ranks, 8, 72)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("trace written to %s (N=%d, %d ranks)\n", *traceOut, *measureN, *ranks)
		return
	}

	if *benchJSON != "" {
		rep, err := bench.JSONReport([]int{1 << 14, 1 << 16, 1 << 18}, *ranks, 8, 72)
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*benchJSON)
		if err != nil {
			fail(err)
		}
		err = rep.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("benchmark summary written to %s (%d sizes, %d ranks)\n", *benchJSON, len(rep.Runs), *ranks)
		if *benchBase != "" {
			bf, err := os.Open(*benchBase)
			if err != nil {
				fail(err)
			}
			baseline, err := bench.ReadReport(bf)
			bf.Close()
			if err != nil {
				fail(err)
			}
			bench.CompareTable(baseline, rep).Fprint(os.Stdout)
			regs, err := bench.Compare(baseline, rep, *benchTol)
			if err != nil {
				fail(err)
			}
			oregs, err := bench.CompareOverlap(baseline, rep, *overlapTol)
			if err != nil {
				fail(err)
			}
			if len(regs) > 0 || len(oregs) > 0 {
				for _, r := range regs {
					fmt.Fprintln(os.Stderr, "soibench: REGRESSION:", r)
				}
				for _, r := range oregs {
					fmt.Fprintln(os.Stderr, "soibench: OVERLAP REGRESSION:", r)
				}
				fmt.Fprintf(os.Stderr, "soibench: %d run(s) regressed beyond %.0f%% ns/op or %.0f%% overlap vs %s\n",
					len(regs)+len(oregs), 100**benchTol, 100**overlapTol, *benchBase)
				os.Exit(1)
			}
			fmt.Printf("benchmark gate passed: no run more than %.0f%% slower or hiding %.0f%% less wire than %s\n",
				100**benchTol, 100**overlapTol, *benchBase)
		}
		return
	}

	if *report {
		t, err := bench.ObservabilityReport(*measureN, *ranks, 8, 72)
		if err != nil {
			fail(err)
		}
		if *asCSV {
			t.FprintCSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
		off, timers, err := bench.InstrumentationOverhead(1<<16, 5)
		if err != nil {
			fail(err)
		}
		fmt.Printf("instrumentation overhead at N=65536 (best of 5): off %v, timers %v (%.1f%%)\n",
			off, timers, 100*(float64(timers)/float64(off)-1))
		return
	}

	cfg, err := bench.DefaultConfig()
	if err != nil {
		fail(err)
	}
	cfg.PointsPerNode = *ppn
	if *goRates {
		cal, err := bench.Calibrate(1 << 20)
		if err != nil {
			fail(err)
		}
		cfg.Cal = cal
		fmt.Printf("calibrated Go rates: FFT %.2f GF/s, conv %.2f GF/s (measured at N=%d)\n",
			cal.FFTFlopsPerSec/1e9, cal.ConvFlopsPerSec/1e9, cal.MeasureN)
	} else {
		fmt.Println("compute rates: paper node (330 GF peak; FFT 10%, conv 40% of peak, Section 7.4)")
	}

	emit := func(t *bench.Table) {
		if *asCSV {
			t.FprintCSV(os.Stdout)
			return
		}
		t.Fprint(os.Stdout)
	}
	run := func(name string) {
		switch name {
		case "table1":
			emit(bench.Table1())
		case "fig5":
			emit(bench.Fig5(cfg))
		case "fig6":
			emit(bench.Fig6(cfg))
		case "fig7":
			must(bench.Fig7(cfg)).Fprint(os.Stdout)
		case "fig8":
			emit(bench.Fig8(cfg))
		case "fig9":
			emit(bench.Fig9(cfg))
		case "snr":
			emit(must(bench.SNRTable(cfg)))
		case "measured":
			emit(must(bench.MeasuredWeakScaling(*measureN, []int{1, 2, 4, 8}, 72)))
		case "ablate-beta":
			emit(bench.AblateBeta(cfg))
		case "ablate-window":
			emit(must(bench.AblateWindow(cfg)))
		case "ablate-segments":
			emit(must(bench.AblateSegments(*measureN, 4, 48)))
		case "ablate-opcount":
			emit(must(bench.AblateOpcount(cfg)))
		case "app-conv":
			emit(must(bench.AppConvolution(cfg, *measureN*4, 4)))
		case "ablate-workers":
			emit(must(bench.AblateWorkers(*measureN*4, 72)))
		case "ablate-scaling":
			emit(must(bench.AblateScaling(72)))
		case "ablate-precision":
			emit(bench.AblatePrecision(cfg))
		case "timeline":
			bench.Timeline(os.Stdout, cfg, netsim.Gordon(), 64)
		case "strong-scaling":
			emit(bench.StrongScaling(cfg, (*ppn)*16))
		case "modern-fabric":
			emit(bench.ModernFabric(cfg))
		default:
			fail(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *exp == "all" {
		for _, name := range []string{
			"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "snr",
			"measured", "app-conv", "timeline", "strong-scaling",
			"modern-fabric", "ablate-beta", "ablate-window",
			"ablate-segments", "ablate-opcount", "ablate-workers",
			"ablate-scaling", "ablate-precision",
		} {
			run(name)
		}
		return
	}
	run(*exp)
}

func must(t *bench.Table, err error) *bench.Table {
	if err != nil {
		fail(err)
	}
	return t
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "soibench:", err)
	os.Exit(1)
}
