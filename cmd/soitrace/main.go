// Command soitrace post-processes Perfetto trace files written by the
// tracing layer (soinode -trace-out, soibench -trace, soiserve's
// /debug/flight).
//
//	soitrace merge -o merged.json rank0.json rank1.json rank2.json
//
// stitches per-process files into one timeline: each rank's events keep
// their track, and clocks are re-based on the sync instant every rank
// emits right after the start-of-run barrier, so spans line up even
// though the processes sampled different monotonic clocks. Open the
// result in https://ui.perfetto.dev.
//
//	soitrace summary merged.json
//
// prints the per-stage critical-path table instead: for every span
// name, the summed wall time of the slowest rank, which rank that is,
// and the span's share of the straggler-bounded critical path —
// followed by any explainer findings mirrored into the trace. With
// -json the digest is emitted as a JSON document for scripts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"soifft"
)

func main() {
	sub := ""
	if len(os.Args) >= 2 {
		sub = os.Args[1]
	}
	switch sub {
	case "merge":
		merge(os.Args[2:])
	case "summary", "-summary", "--summary":
		summary(os.Args[2:])
	default:
		fmt.Fprintln(os.Stderr, "usage: soitrace merge [-o out.json] trace1.json trace2.json ...")
		fmt.Fprintln(os.Stderr, "       soitrace summary [-json] trace.json")
		os.Exit(2)
	}
}

func merge(args []string) {
	fs := flag.NewFlagSet("soitrace merge", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		fail(fmt.Errorf("no input traces given"))
	}

	inputs := make([]io.Reader, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		inputs = append(inputs, f)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		w = f
	}
	if err := soifft.MergeTraces(w, inputs...); err != nil {
		fail(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "merged %d trace(s) into %s\n", len(paths), *out)
	}
}

func summary(args []string) {
	fs := flag.NewFlagSet("soitrace summary", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the digest as JSON instead of a table")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("summary takes exactly one (merged) trace file"))
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	s, err := soifft.SummarizeTrace(f)
	if err != nil {
		fail(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fail(err)
		}
		return
	}
	s.WriteTable(os.Stdout)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "soitrace:", err)
	os.Exit(1)
}
