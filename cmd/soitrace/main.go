// Command soitrace post-processes Perfetto trace files written by the
// tracing layer (soinode -trace-out, soibench -trace, soiserve's
// /debug/flight).
//
//	soitrace merge -o merged.json rank0.json rank1.json rank2.json
//
// stitches per-process files into one timeline: each rank's events keep
// their track, and clocks are re-based on the sync instant every rank
// emits right after the start-of-run barrier, so spans line up even
// though the processes sampled different monotonic clocks. Open the
// result in https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"soifft"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "merge" {
		fmt.Fprintln(os.Stderr, "usage: soitrace merge [-o out.json] trace1.json trace2.json ...")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("soitrace merge", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(os.Args[2:])
	paths := fs.Args()
	if len(paths) == 0 {
		fail(fmt.Errorf("no input traces given"))
	}

	inputs := make([]io.Reader, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		inputs = append(inputs, f)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		w = f
	}
	if err := soifft.MergeTraces(w, inputs...); err != nil {
		fail(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "merged %d trace(s) into %s\n", len(paths), *out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "soitrace:", err)
	os.Exit(1)
}
