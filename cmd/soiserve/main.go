// Command soiserve runs the SOI FFT service and its client verb.
//
//	soiserve serve -addr 127.0.0.1:7080 -metrics-addr 127.0.0.1:7081 \
//	    -wisdom plan1.json,plan2.json -cache 32 -max-batch 8 -linger 2ms
//
// starts a long-running server: transform requests over TCP resolve
// through an LRU plan cache (warmable from wisdom files), same-plan
// requests coalesce into batches on a bounded worker pool with
// backpressure, and live metrics are exported on the metrics address
// (/debug/vars, /healthz). SIGTERM/SIGINT drain gracefully: accepted
// requests finish, then the process exits 0.
//
//	soiserve query -addr 127.0.0.1:7080 -n 65536 -segments 8 -taps 72 \
//	    [-inverse] [-count 4] [-signal random|tones|chirp] [-check]
//
// sends transform requests to a running server and reports latency
// (and, with -check, accuracy against a locally computed FFT).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"soifft"
	"soifft/client"
	"soifft/internal/logutil"
	"soifft/internal/serve"
	sig "soifft/internal/signal"
	"soifft/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		runServe(os.Args[2:])
	case "query":
		runQuery(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: soiserve serve|query [flags]  (run with -h for flags)")
	os.Exit(2)
}

func runServe(args []string) {
	fs := flag.NewFlagSet("soiserve serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7080", "TCP listen address for transform requests")
	metricsAddr := fs.String("metrics-addr", "127.0.0.1:7081", "HTTP listen address for /debug/vars and /healthz (empty = disabled)")
	wisdom := fs.String("wisdom", "", "comma-separated wisdom files to warm the plan cache from")
	cache := fs.Int("cache", 32, "plan cache capacity")
	workers := fs.Int("workers", 0, "transform worker goroutines (0 = GOMAXPROCS)")
	maxBatch := fs.Int("max-batch", 8, "max same-plan requests per batch")
	linger := fs.Duration("linger", 2*time.Millisecond, "max wait for a batch to fill")
	queue := fs.Int("queue", 256, "max queued requests before backpressure rejection")
	maxN := fs.Int("max-n", 1<<22, "largest accepted transform length")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	idleTimeout := fs.Duration("idle-timeout", 5*time.Minute, "disconnect clients idle longer than this (0 = never)")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "disconnect clients that stall reading a response (0 = never)")
	instrument := fs.String("instrument", "off", "per-plan pipeline instrumentation: off|counters|timers (exported on /metrics)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug|info|warn|error")
	logFormat := fs.String("log-format", "text", "log encoding: text|json")
	traceOn := fs.Bool("trace", false, "record per-request timelines into the in-memory flight ring (export on /debug/flight)")
	flightDir := fs.String("flight-dir", "", "dump the flight ring to Perfetto JSON files here on typed faults (implies -trace)")
	_ = fs.Parse(args)

	level, err := parseInstrument(*instrument)
	if err != nil {
		fail(err)
	}
	logger, err := logutil.New(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fail(err)
	}
	var tracer *trace.Tracer
	if *traceOn || *flightDir != "" {
		tracer = trace.New(0)
	}

	s := serve.New(serve.Config{
		Addr: *addr, CacheCapacity: *cache, Workers: *workers,
		MaxBatch: *maxBatch, MaxLinger: *linger, QueueDepth: *queue,
		MaxN: *maxN, IdleTimeout: *idleTimeout, WriteTimeout: *writeTimeout,
		Instrument: level,
		Logger:     logger,
		Tracer:     tracer,
		FlightDir:  *flightDir,
	})

	if *wisdom != "" {
		for _, path := range strings.Split(*wisdom, ",") {
			f, err := os.Open(path)
			if err != nil {
				fail(err)
			}
			p, err := s.WarmWisdom(f)
			f.Close()
			if err != nil {
				fail(fmt.Errorf("warming from %s: %w", path, err))
			}
			logger.Info("plan warmed", "key", p.Key().String(), "predicted_digits", p.PredictedDigits())
		}
	}

	if err := s.Listen(); err != nil {
		fail(err)
	}
	logger.Info("listening", "addr", s.Addr().String(), "tracing", tracer.Enabled())

	if *metricsAddr != "" {
		ms := &http.Server{Addr: *metricsAddr, Handler: s.Metrics().Handler()}
		go func() {
			if err := ms.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics listener failed", "err", err)
			}
		}()
		defer ms.Close()
		logger.Info("metrics serving", "addr", *metricsAddr,
			"endpoints", "/debug/vars /metrics /debug/flight /debug/pprof/")
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	select {
	case err := <-serveDone:
		if err != nil {
			fail(err)
		}
	case got := <-sigCh:
		logger.Info("draining", "signal", got.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fail(fmt.Errorf("drain: %w", err))
		}
		if err := <-serveDone; err != nil {
			fail(err)
		}
		logger.Info("drained, exiting")
	}
}

func runQuery(args []string) {
	fs := flag.NewFlagSet("soiserve query", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7080", "server address")
	n := fs.Int("n", 1<<16, "transform length")
	segments := fs.Int("segments", 0, "SOI segments P (0 = server default)")
	taps := fs.Int("taps", 0, "convolution taps B (0 = server default)")
	accuracy := fs.Int("accuracy", -1, "accuracy rung 0-4 (overrides -taps; -1 = off)")
	inverse := fs.Bool("inverse", false, "compute the inverse transform")
	count := fs.Int("count", 1, "number of requests to send")
	sigName := fs.String("signal", "random", "generated input: random|tones|chirp")
	check := fs.Bool("check", false, "verify answers against a locally computed FFT")
	timeout := fs.Duration("timeout", time.Minute, "per-request deadline; a stalled server fails the request instead of hanging the caller (0 = wait forever)")
	_ = fs.Parse(args)

	dialCtx, dialCancel := context.WithTimeout(context.Background(), 10*time.Second)
	c, err := client.DialContext(dialCtx, *addr)
	dialCancel()
	if err != nil {
		fail(err)
	}
	defer c.Close()
	c.SetRequestTimeout(*timeout)

	opt := &client.Options{Segments: *segments, Taps: *taps}
	if *accuracy >= 0 {
		opt.Accuracy = soifft.Accuracy(*accuracy)
		opt.UseAccuracy = true
	}
	src, err := makeSignal(*sigName, *n)
	if err != nil {
		fail(err)
	}
	var ref []complex128
	if *check {
		if *inverse {
			ref, err = soifft.IFFT(src)
		} else {
			ref, err = soifft.FFT(src)
		}
		if err != nil {
			fail(err)
		}
	}

	ctx := context.Background()
	var total time.Duration
	for i := 0; i < *count; i++ {
		start := time.Now()
		var got []complex128
		if *inverse {
			got, err = c.Inverse(src, opt)
		} else {
			got, err = c.TransformRetry(ctx, src, opt, 5)
		}
		if err != nil {
			fail(err)
		}
		d := time.Since(start)
		total += d
		line := fmt.Sprintf("request %d: %d points in %v", i+1, len(got), d)
		if *check {
			line += fmt.Sprintf(" (rel err %.3e, SNR %.0f dB)", sig.RelErrL2(got, ref), sig.SNRdB(got, ref))
		}
		fmt.Println(line)
	}
	if *count > 1 {
		fmt.Printf("mean latency %v over %d requests\n", total/time.Duration(*count), *count)
	}
}

func makeSignal(name string, n int) ([]complex128, error) {
	switch name {
	case "random":
		return sig.Random(n, 1), nil
	case "tones":
		return sig.Tones(n, []int{3, n / 3, n - 7}, []complex128{1, 0.5i, 0.25}), nil
	case "chirp":
		return sig.Chirp(n, 0, float64(n)/2), nil
	default:
		return nil, fmt.Errorf("unknown signal %q", name)
	}
}

func parseInstrument(s string) (soifft.InstrumentLevel, error) {
	switch s {
	case "off":
		return soifft.InstrumentOff, nil
	case "counters":
		return soifft.InstrumentCounters, nil
	case "timers":
		return soifft.InstrumentTimers, nil
	default:
		return soifft.InstrumentOff, fmt.Errorf("unknown -instrument level %q (want off, counters or timers)", s)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "soiserve:", err)
	os.Exit(1)
}
