// Command soigate runs the sharded serving tier's gateway: a wire-level
// soiserve peer that routes each transform to a replica by
// consistent-hashing its PlanKey (warm-plan affinity preserves same-plan
// batching), spills off overloaded replicas under a bounded-load rule,
// fails over on transport errors and draining replicas, and applies
// per-tenant admission control with fair queueing. Existing clients
// point at the gateway unchanged.
//
//	soigate -addr 127.0.0.1:7090 -metrics-addr 127.0.0.1:7091 \
//	    -replicas "127.0.0.1:7080=http://127.0.0.1:7081,127.0.0.1:7082"
//
// names a static replica set: each entry is "addr" or "addr=healthurl"
// (with a health URL the gateway polls /healthz and reads its JSON body;
// without one it falls back to protocol pings). Alternatively,
//
//	soigate -replicas-file replicas.txt -discovery-interval 5s
//
// re-reads a file of "addr [healthurl]" lines (one per replica, # for
// comments) on the discovery interval, so a fleet manager can scale the
// tier by rewriting one file. The metrics address serves Prometheus
// /metrics (per-replica latency histograms and routing counters),
// /debug/ring (live ring and health snapshot) and /healthz (200 while
// at least one replica is routable).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"soifft/internal/gate"
	"soifft/internal/logutil"
)

func main() {
	fs := flag.NewFlagSet("soigate", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7090", "TCP listen address clients connect to")
	metricsAddr := fs.String("metrics-addr", "127.0.0.1:7091", "HTTP listen address for /metrics, /debug/ring and /healthz (empty = disabled)")
	replicas := fs.String("replicas", "", "comma-separated static replica list: addr or addr=healthurl")
	replicasFile := fs.String("replicas-file", "", "file of 'addr [healthurl]' lines, re-read on -discovery-interval")
	discoveryInterval := fs.Duration("discovery-interval", 5*time.Second, "replicas-file polling period")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "replica /healthz polling period")
	vnodes := fs.Int("vnodes", 64, "consistent-hash ring points per replica")
	loadFactor := fs.Float64("load-factor", 1.25, "bounded-load spill factor (x the healthy-replica average in-flight; <1 disables)")
	attemptTimeout := fs.Duration("attempt-timeout", 30*time.Second, "per-replica attempt deadline (dial+write+serve+read)")
	maxAttempts := fs.Int("max-attempts", 0, "max replica attempts per request (0 = replicas+1)")
	maxInflight := fs.Int("max-inflight", 1024, "gateway-wide cap on concurrently proxied requests")
	tenantQueue := fs.Int("tenant-queue", 128, "max waiting requests per tenant before typed backpressure")
	retryAfter := fs.Duration("retry-after", 50*time.Millisecond, "hint attached to gateway-level rejections")
	maxN := fs.Int("max-n", 1<<22, "largest accepted transform length")
	idleTimeout := fs.Duration("idle-timeout", 5*time.Minute, "disconnect clients idle longer than this (0 = never)")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "disconnect clients that stall reading a response (0 = never)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	logLevel := fs.String("log-level", "info", "log verbosity: debug|info|warn|error")
	logFormat := fs.String("log-format", "text", "log encoding: text|json")
	_ = fs.Parse(os.Args[1:])

	logger, err := logutil.New(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fail(err)
	}
	if *replicas == "" && *replicasFile == "" {
		fail(fmt.Errorf("no replicas: set -replicas or -replicas-file"))
	}

	var specs []gate.ReplicaSpec
	if *replicas != "" {
		specs = parseReplicas(*replicas)
	}
	if *replicasFile != "" {
		fromFile, err := readReplicasFile(*replicasFile)
		if err != nil {
			fail(err)
		}
		specs = append(specs, fromFile...)
	}

	g := gate.New(gate.Config{
		Addr: *addr, Replicas: specs,
		HealthInterval: *healthInterval, VNodes: *vnodes,
		BoundedLoadFactor: *loadFactor, AttemptTimeout: *attemptTimeout,
		MaxAttempts: *maxAttempts, MaxInflight: *maxInflight,
		TenantQueue: *tenantQueue, RetryAfter: *retryAfter, MaxN: *maxN,
		IdleTimeout: *idleTimeout, WriteTimeout: *writeTimeout,
		Logger: logger,
	})

	if err := g.Listen(); err != nil {
		fail(err)
	}
	logger.Info("gateway listening", "addr", g.Addr().String(), "replicas", len(specs))

	if *metricsAddr != "" {
		ms := &http.Server{Addr: *metricsAddr, Handler: g.Metrics().Handler()}
		go func() {
			if err := ms.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics listener failed", "err", err)
			}
		}()
		defer ms.Close()
		logger.Info("metrics serving", "addr", *metricsAddr, "endpoints", "/metrics /debug/ring /healthz")
	}

	stopDiscovery := make(chan struct{})
	if *replicasFile != "" {
		go func() {
			t := time.NewTicker(*discoveryInterval)
			defer t.Stop()
			for {
				select {
				case <-stopDiscovery:
					return
				case <-t.C:
					fromFile, err := readReplicasFile(*replicasFile)
					if err != nil {
						logger.Warn("discovery re-read failed", "file", *replicasFile, "err", err)
						continue
					}
					g.SetReplicas(append(parseReplicas(*replicas), fromFile...))
				}
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	serveDone := make(chan error, 1)
	go func() { serveDone <- g.Serve() }()

	select {
	case err := <-serveDone:
		if err != nil {
			fail(err)
		}
	case got := <-sigCh:
		logger.Info("draining", "signal", got.String())
		close(stopDiscovery)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := g.Shutdown(ctx); err != nil {
			fail(fmt.Errorf("drain: %w", err))
		}
		if err := <-serveDone; err != nil {
			fail(err)
		}
		logger.Info("drained, exiting")
	}
}

// parseReplicas parses "addr,addr=healthurl,..." into specs.
func parseReplicas(s string) []gate.ReplicaSpec {
	var specs []gate.ReplicaSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		addr, health, _ := strings.Cut(part, "=")
		specs = append(specs, gate.ReplicaSpec{Addr: addr, HealthURL: health})
	}
	return specs
}

// readReplicasFile parses a discovery file: one "addr [healthurl]" per
// line, blank lines and #-comments skipped.
func readReplicasFile(path string) ([]gate.ReplicaSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var specs []gate.ReplicaSpec
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		sp := gate.ReplicaSpec{Addr: fields[0]}
		if len(fields) > 1 {
			sp.HealthURL = fields[1]
		}
		specs = append(specs, sp)
	}
	return specs, sc.Err()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "soigate:", err)
	os.Exit(1)
}
