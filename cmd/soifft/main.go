// Command soifft transforms data with the SOI algorithm and reports
// accuracy against the conventional FFT — a smoke-test and utility CLI
// for the library.
//
// Usage:
//
//	soifft [-n 65536] [-segments 8] [-taps 72] [-ranks 0] [-inverse]
//	       [-signal random|tones|chirp] [-in data.c128] [-out result.c128]
//	       [-wisdom-in plan.json] [-wisdom-out plan.json]
//
// Input/output files hold raw little-endian complex128 values (pairs of
// float64). With -ranks R > 0 the transform runs distributed over R
// simulated ranks and reports the communication profile (the single
// all-to-all).
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"soifft"
	"soifft/internal/signal"
)

func main() {
	n := flag.Int("n", 1<<16, "transform length (ignored when -in is set)")
	segments := flag.Int("segments", 8, "SOI segments P")
	taps := flag.Int("taps", 72, "convolution taps B")
	ranks := flag.Int("ranks", 0, "run distributed over this many simulated ranks (0 = shared memory)")
	inverse := flag.Bool("inverse", false, "compute the inverse transform")
	sig := flag.String("signal", "random", "generated input: random|tones|chirp")
	inFile := flag.String("in", "", "read input from a raw complex128 file")
	outFile := flag.String("out", "", "write the transform to a raw complex128 file")
	wisdomIn := flag.String("wisdom-in", "", "load the plan from a wisdom file")
	wisdomOut := flag.String("wisdom-out", "", "save the plan's wisdom after planning")
	report := flag.Bool("report", false, "arm stage timers and print the plan's observability report after the transform")
	traceOut := flag.String("trace", "", "write a Perfetto trace JSON of the transform's pipeline stages here (open in ui.perfetto.dev)")
	flag.Parse()

	src, err := loadInput(*inFile, *n, *sig)
	if err != nil {
		fail(err)
	}

	plan, err := makePlan(*wisdomIn, len(src), *segments, *taps)
	if err != nil {
		fail(err)
	}
	if *report {
		plan.Instrument(soifft.InstrumentTimers)
	}
	if *wisdomOut != "" {
		f, err := os.Create(*wisdomOut)
		if err != nil {
			fail(err)
		}
		if err := plan.WriteWisdom(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wisdom saved to %s\n", *wisdomOut)
	}
	fmt.Printf("SOI plan: N=%d P=%d B=%d beta=%.3g predicted digits=%.1f\n",
		plan.N(), plan.Segments(), plan.Taps(), plan.Oversampling(), plan.PredictedDigits())

	ctx := context.Background()
	var tracer *soifft.Tracer
	if *traceOut != "" {
		tracer = soifft.NewTracer(0)
		ctx = soifft.WithTracer(soifft.WithTraceID(ctx, soifft.NewTraceID()), tracer)
	}

	got := make([]complex128, len(src))
	start := time.Now()
	switch {
	case *ranks > 0:
		w, err := soifft.NewWorld(*ranks)
		if err != nil {
			fail(err)
		}
		if *inverse {
			err = plan.InverseDistributedContext(ctx, w, got, src)
		} else {
			err = plan.TransformDistributedContext(ctx, w, got, src)
		}
		if err != nil {
			fail(err)
		}
		st := w.Stats()
		fmt.Printf("distributed over %d ranks in %v\n", *ranks, time.Since(start))
		fmt.Printf("communication: %d all-to-all(s), %.2f MB exchanged, %d messages, %.2f MB total wire\n",
			st.Alltoalls, float64(st.AlltoallBytes)/1e6, st.Messages, float64(st.Bytes)/1e6)
	case *inverse:
		if err := plan.InverseContext(ctx, got, src); err != nil {
			fail(err)
		}
		fmt.Printf("shared-memory inverse in %v\n", time.Since(start))
	default:
		if err := plan.TransformContext(ctx, got, src); err != nil {
			fail(err)
		}
		fmt.Printf("shared-memory transform in %v\n", time.Since(start))
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		werr := tracer.WritePerfetto(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fail(werr)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}

	var ref []complex128
	if *inverse {
		ref, err = soifft.IFFT(src)
	} else {
		ref, err = soifft.FFT(src)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("accuracy vs conventional FFT: rel err %.3e, SNR %.0f dB\n",
		signal.RelErrL2(got, ref), signal.SNRdB(got, ref))

	if *report {
		fmt.Print(plan.Report())
	}

	if *outFile != "" {
		if err := writeComplexFile(*outFile, got); err != nil {
			fail(err)
		}
		fmt.Printf("result written to %s\n", *outFile)
	}
}

func makePlan(wisdomPath string, n, segments, taps int) (*soifft.Plan, error) {
	if wisdomPath != "" {
		f, err := os.Open(wisdomPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		plan, err := soifft.ReadWisdom(f)
		if err != nil {
			return nil, err
		}
		if plan.N() != n {
			return nil, fmt.Errorf("wisdom is for N=%d but input has %d points", plan.N(), n)
		}
		return plan, nil
	}
	return soifft.NewPlan(n, soifft.WithSegments(segments), soifft.WithTaps(taps))
}

func loadInput(path string, n int, sig string) ([]complex128, error) {
	if path != "" {
		return readComplexFile(path)
	}
	switch sig {
	case "random":
		return signal.Random(n, 1), nil
	case "tones":
		return signal.Tones(n, []int{3, n / 3, n - 7}, []complex128{1, 0.5i, 0.25}), nil
	case "chirp":
		return signal.Chirp(n, 0, float64(n)/2), nil
	default:
		return nil, fmt.Errorf("unknown signal %q", sig)
	}
}

func readComplexFile(path string) ([]complex128, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%16 != 0 {
		return nil, fmt.Errorf("%s: size %d is not a multiple of 16 (complex128)", path, len(raw))
	}
	out := make([]complex128, len(raw)/16)
	for i := range out {
		re := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16+8:]))
		out[i] = complex(re, im)
	}
	return out, nil
}

func writeComplexFile(path string, data []complex128) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 16)
	for _, v := range data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(v)))
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "soifft:", err)
	os.Exit(1)
}
