// Command windesign explores the SOI window design space: given a tap
// budget B and oversampling β it reports the best two-parameter (τ,σ)
// window, its condition number κ, aliasing and truncation errors, and
// the predicted digits of accuracy (paper Section 4).
//
// Usage:
//
//	windesign [-b 72] [-beta 0.25] [-kappa-max 1000] [-sweep] [-gaussian]
package main

import (
	"flag"
	"fmt"

	"soifft/internal/window"
)

func main() {
	b := flag.Int("b", 72, "convolution taps")
	beta := flag.Float64("beta", 0.25, "oversampling fraction")
	kmax := flag.Float64("kappa-max", 1e3, "condition number bound")
	sweep := flag.Bool("sweep", false, "sweep B from 16 to 96 and print the accuracy ladder")
	gaussian := flag.Bool("gaussian", false, "design the one-parameter gaussian window instead")
	compact := flag.Bool("compact", false, "use the compactly supported bump window (zero aliasing)")
	kaiser := flag.Bool("kaiser", false, "use the Kaiser-Bessel window (zero truncation)")
	flag.Parse()

	if *sweep {
		fmt.Printf("%-5s %-34s %8s %10s %10s %8s\n", "B", "window", "kappa", "eps_alias", "eps_trunc", "digits")
		for bb := 16; bb <= 96; bb += 8 {
			d := window.Design(bb, *beta, *kmax)
			m := d.Metrics
			fmt.Printf("%-5d %-34s %8.2f %10.2e %10.2e %8.1f\n",
				bb, d.Window.String(), m.Kappa, m.EpsAlias, m.EpsTrunc, m.Digits())
		}
		return
	}
	var d window.DesignResult
	switch {
	case *compact:
		w, err := window.NewCompactBump(*beta, float64(*b)/2+8)
		if err != nil {
			fmt.Println("windesign:", err)
			return
		}
		d = window.DesignResult{Window: w, Metrics: window.Analyze(w, *beta, *b), B: *b, Beta: *beta}
	case *kaiser:
		d = window.DesignKaiser(*b, *beta, *kmax)
	case *gaussian:
		d = window.DesignGaussian(*b, *beta)
	default:
		d = window.Design(*b, *beta, *kmax)
	}
	fmt.Println(d)
}
