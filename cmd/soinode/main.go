// Command soinode runs one rank of a distributed SOI transform as its
// own OS process, communicating with its peers over TCP (internal/
// mpinet). Start one process per rank, e.g. for two local ranks:
//
//	soinode -rank 0 -size 2 -listen 127.0.0.1:7000 -peers 127.0.0.1:7000,127.0.0.1:7001 &
//	soinode -rank 1 -size 2 -listen 127.0.0.1:7001 -peers 127.0.0.1:7000,127.0.0.1:7001
//
// Every rank generates the same deterministic input from -seed and works
// on its block; rank 0 gathers the distributed spectrum and reports the
// accuracy against a locally computed conventional FFT.
//
// The transport fails typed and bounded rather than hanging: -io-timeout
// arms a per-operation deadline (heartbeats keep healthy idle links
// alive), and any wire fault — peer death, corrupted frame, expired
// deadline — exits non-zero naming the failed peer and operation.
// -fault-plan injects deterministic faults (internal/faultnet) into this
// rank's links for live chaos drills, e.g.
//
//	soinode ... -io-timeout 5s -fault-plan seed=42,corrupt=0.001,latency=1ms
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"soifft/internal/bench"
	"soifft/internal/core"
	"soifft/internal/faultnet"
	"soifft/internal/fft"
	"soifft/internal/instrument"
	"soifft/internal/mpinet"
	"soifft/internal/perfmodel"
	"soifft/internal/signal"
)

func main() {
	rank := flag.Int("rank", 0, "this process's rank")
	size := flag.Int("size", 1, "total rank count")
	listen := flag.String("listen", "127.0.0.1:0", "listen address for this rank")
	peers := flag.String("peers", "", "comma-separated listen addresses of all ranks, in rank order")
	n := flag.Int("n", 1<<16, "transform length")
	segments := flag.Int("segments", 8, "SOI segments P")
	taps := flag.Int("taps", 72, "convolution taps B")
	seed := flag.Int64("seed", 1, "shared input seed")
	connectTimeout := flag.Duration("connect-timeout", mpinet.DefaultConnectTimeout,
		"how long to wait for all peers before giving up")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second,
		"per-operation I/O deadline on peer links; a peer that stalls longer is declared dead with a typed error (0 = wait forever)")
	faultPlan := flag.String("fault-plan", "",
		"faultnet chaos plan injected into this rank's links, e.g. seed=42,corrupt=0.001,latency=1ms (see internal/faultnet)")
	report := flag.Bool("report", false,
		"arm stage timers and print this rank's observability report after the transform: per-stage timings, comm counters, and the measured-vs-predicted communication ratio")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	node, err := mpinet.NewNode(*rank, *size, *listen)
	if err != nil {
		fail(err)
	}
	node.SetConnectTimeout(*connectTimeout)
	if *faultPlan != "" {
		plan, err := faultnet.ParsePlan(*faultPlan)
		if err != nil {
			fail(err)
		}
		self := *rank
		node.SetConnWrapper(func(peerRank int, c net.Conn) net.Conn {
			return plan.Conn(c, faultnet.LinkID(self, peerRank))
		})
		fmt.Printf("rank %d: chaos drill armed: %s\n", *rank, plan)
	}
	fmt.Printf("rank %d/%d listening on %s\n", *rank, *size, node.Addr())
	proc, err := node.Connect(addrs)
	if err != nil {
		var pe *mpinet.PeerError
		if errors.As(err, &pe) {
			fail(fmt.Errorf("%w\npeer rank %d never appeared at %s within %v — check that every rank is running and -peers lists the same addresses in rank order",
				err, pe.Rank, pe.Addr, *connectTimeout))
		}
		fail(err)
	}
	defer proc.Close()
	proc.SetIOTimeout(*ioTimeout)

	plan, err := core.NewPlan(core.Params{
		N: *n, P: *segments, Mu: 5, Nu: 4, B: *taps,
	})
	if err != nil {
		fail(err)
	}
	if err := plan.ValidateDistributed(*size); err != nil {
		fail(err)
	}
	if *report {
		plan.SetRecorder(instrument.New(instrument.LevelTimers))
		proc.SetRecorder(plan.Recorder())
	}

	src := signal.Random(*n, *seed)
	nLocal := *n / *size
	out := make([]complex128, nLocal)
	if err := core.GuardComm(proc.Barrier); err != nil {
		fail(err)
	}
	t0 := time.Now()
	dt, err := plan.RunDistributed(proc, out, src[*rank*nLocal:(*rank+1)*nLocal])
	if err != nil {
		fail(err)
	}
	fmt.Printf("rank %d: transform in %v (halo %v, conv %v, exchange %v, segments %v)\n",
		*rank, time.Since(t0), dt.Halo, dt.Convolve, dt.Exchange, dt.SegmentFT)

	var full []complex128
	if err := core.GuardComm(func() { full = proc.Gather(0, out) }); err != nil {
		fail(err)
	}
	if *rank == 0 {
		ref, err := fft.Forward(src)
		if err != nil {
			fail(err)
		}
		fmt.Printf("rank 0: gathered %d points; rel err vs conventional FFT %.3e (SNR %.0f dB)\n",
			len(full), signal.RelErrL2(full, ref), signal.SNRdB(full, ref))
	}
	if err := core.GuardComm(proc.Barrier); err != nil {
		fail(err)
	}

	if *report {
		snap := plan.Recorder().Snapshot()
		bench.WriteStageReport(os.Stdout, fmt.Sprintf("rank %d", *rank), snap)
		nPrime := int64(*n) * 5 / 4
		perRank := 16 * nPrime * int64(*size-1) / int64(*size) / int64(*size)
		baseline := 3 * 16 * int64(*n) * int64(*size-1) / int64(*size) / int64(*size)
		model := perfmodel.Model{Beta: 0.25}
		ratio := 0.0
		if snap.Comm.AlltoallBytes > 0 {
			ratio = float64(baseline) / float64(snap.Comm.AlltoallBytes)
		}
		fmt.Printf("rank %d: exchange volume %d B (analytic per-rank %d B); vs triple-all-to-all %d B: ratio %.3f, paper predicts 3/(1+beta) = %.3f\n",
			*rank, snap.Comm.AlltoallBytes, perRank, baseline, ratio, model.AsymptoticSpeedup())
		ns := proc.Stats()
		fmt.Printf("rank %d: wire: %d frames out (%d B), %d frames in (%d B), %d heartbeats, %d dial retries, %d deadline, %d checksum, %d link failures\n",
			*rank, ns.FramesSent, ns.BytesSent, ns.FramesReceived, ns.BytesReceived,
			ns.HeartbeatsSent, ns.DialRetries, ns.DeadlineEvents, ns.ChecksumErrors, ns.LinkFailures)
	}
}

// fail exits non-zero; a typed transport fault names the failed peer and
// operation on its own line so operators can see at a glance which rank
// to investigate.
func fail(err error) {
	var te *mpinet.TransportError
	if errors.As(err, &te) {
		fmt.Fprintf(os.Stderr, "soinode: transport failure: peer rank %d, op %s: %v\n",
			te.Rank, te.Op, te.Err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "soinode:", err)
	os.Exit(1)
}
