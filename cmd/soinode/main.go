// Command soinode runs one rank of a distributed SOI transform as its
// own OS process, communicating with its peers over TCP (internal/
// mpinet). Start one process per rank, e.g. for two local ranks:
//
//	soinode -rank 0 -size 2 -listen 127.0.0.1:7000 -peers 127.0.0.1:7000,127.0.0.1:7001 &
//	soinode -rank 1 -size 2 -listen 127.0.0.1:7001 -peers 127.0.0.1:7000,127.0.0.1:7001
//
// Every rank generates the same deterministic input from -seed and works
// on its block; rank 0 gathers the distributed spectrum and reports the
// accuracy against a locally computed conventional FFT.
//
// The transport fails typed and bounded rather than hanging: -io-timeout
// arms a per-operation deadline (heartbeats keep healthy idle links
// alive), and any wire fault — peer death, corrupted frame, expired
// deadline — exits non-zero naming the failed peer and operation.
// -fault-plan injects deterministic faults (internal/faultnet) into this
// rank's links for live chaos drills, e.g.
//
//	soinode ... -io-timeout 5s -fault-plan seed=42,corrupt=0.001,latency=1ms
//
// -coded m arms the erasure-protected exchange: each rank encodes its
// all-to-all chunks into m parity shares, so the transform survives a
// rank that dies mid-exchange (after its frames flushed) — the run
// completes with the bit-exact spectrum, logs a degraded-mode warning
// naming the reconstructed rank, and exits 0. Losses beyond the parity
// budget exit non-zero with a typed error naming every dead peer.
//
// With -trace-out each rank records an event timeline of its pipeline
// stages (rank 0 mints the trace ID and broadcasts it over the wire, so
// every rank's spans share it) and writes a Perfetto JSON file on exit;
// stitch the per-rank files with `soitrace merge`. -flight-dir arms the
// flight recorder: a typed transport fault dumps the last ~64k events
// to a timestamped file there before the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"soifft/internal/bench"
	"soifft/internal/core"
	"soifft/internal/faultnet"
	"soifft/internal/fft"
	"soifft/internal/instrument"
	"soifft/internal/logutil"
	"soifft/internal/mpinet"
	"soifft/internal/perfmodel"
	"soifft/internal/signal"
	"soifft/internal/telemetry"
	"soifft/internal/trace"
)

func main() {
	rank := flag.Int("rank", 0, "this process's rank")
	size := flag.Int("size", 1, "total rank count")
	listen := flag.String("listen", "127.0.0.1:0", "listen address for this rank")
	peers := flag.String("peers", "", "comma-separated listen addresses of all ranks, in rank order")
	n := flag.Int("n", 1<<16, "transform length")
	segments := flag.Int("segments", 8, "SOI segments P")
	taps := flag.Int("taps", 72, "convolution taps B")
	seed := flag.Int64("seed", 1, "shared input seed")
	connectTimeout := flag.Duration("connect-timeout", mpinet.DefaultConnectTimeout,
		"how long to wait for all peers before giving up")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second,
		"per-operation I/O deadline on peer links; a peer that stalls longer is declared dead with a typed error (0 = wait forever)")
	coded := flag.Int("coded", -1,
		"erasure parity shares m for the coded exchange: survive ranks dying mid-transform at a wire cost of (R-1+m)/(R-1) (0 = detection only, -1 = plain exchange)")
	asyncWindow := flag.String("async-window", "0",
		"stream the all-to-all in chunks with this many in flight per link, overlapping wire time with convolution (0 = blocking exchange, 'auto' = the closed-loop controller picks and adapts the window between transforms); composes with -coded")
	transforms := flag.Int("transforms", 1,
		"run this many back-to-back transforms on the same input (with -async-window=auto the controller re-tunes the window between them)")
	faultPlan := flag.String("fault-plan", "",
		"faultnet chaos plan injected into this rank's links, e.g. seed=42,corrupt=0.001,latency=1ms (see internal/faultnet)")
	report := flag.Bool("report", false,
		"arm stage timers and print this rank's observability report after the transform: per-stage timings, comm counters, and the measured-vs-predicted communication ratio")
	telemetryFlag := flag.Bool("telemetry", false,
		"arm the cluster telemetry plane: this rank ships stat frames to rank 0 at end-of-transform and on exit; pass it (or any other telemetry flag) to EVERY rank, and add -cluster-json/-watch/-http on rank 0 for the aggregated surfaces")
	telemetryInterval := flag.Duration("telemetry-interval", 0,
		"ship this rank's stat frame to rank 0 this often mid-transform, in addition to the end-of-transform and final frames (0 = no periodic shipping); arming any telemetry flag starts the cluster plane")
	clusterJSON := flag.String("cluster-json", "",
		"rank 0: write the final aggregated cluster snapshot (per-rank stage matrix, per-link wire table, explainer findings) as JSON to this file")
	watch := flag.Duration("watch", 0,
		"rank 0: print the live cluster view to stderr this often while the run is in flight")
	httpAddr := flag.String("http", "",
		"serve /metrics (Prometheus, this rank + cluster gauges on rank 0) and /debug/cluster (aggregated JSON, rank 0) on this address")
	traceOut := flag.String("trace-out", "",
		"write this rank's Perfetto trace JSON here (rank 0 mints the trace ID and broadcasts it, so per-rank files merge into one timeline with `soitrace merge`)")
	flightDir := flag.String("flight-dir", "",
		"dump the event ring to a timestamped Perfetto file in this directory when a typed transport fault kills the run (implies tracing)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log encoding: text|json")
	flag.Parse()

	logger, err := logutil.New(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		failPlain(err)
	}
	log := logger.With("rank", *rank)

	// Flag validation that needs no network: reject a malformed window
	// or transform count before any socket is opened, so a typo fails in
	// milliseconds instead of after the mesh dial.
	window, adaptive, err := parseAsyncWindow(*asyncWindow, *size)
	if err != nil {
		fail(log, err)
	}
	if *transforms < 1 {
		fail(log, &UsageError{Flag: "-transforms", Value: fmt.Sprint(*transforms),
			Reason: "must be at least 1"})
	}

	addrs := strings.Split(*peers, ",")
	node, err := mpinet.NewNode(*rank, *size, *listen)
	if err != nil {
		fail(log, err)
	}
	node.SetConnectTimeout(*connectTimeout)
	if *faultPlan != "" {
		plan, err := faultnet.ParsePlan(*faultPlan)
		if err != nil {
			fail(log, err)
		}
		self := *rank
		node.SetConnWrapper(func(peerRank int, c net.Conn) net.Conn {
			return plan.Conn(c, faultnet.LinkID(self, peerRank))
		})
		log.Info("chaos drill armed", "plan", plan.String())
	}
	log.Info("listening", "size", *size, "addr", node.Addr())
	proc, err := node.Connect(addrs)
	if err != nil {
		var pe *mpinet.PeerError
		if errors.As(err, &pe) {
			fail(log, fmt.Errorf("%w\npeer rank %d never appeared at %s within %v — check that every rank is running and -peers lists the same addresses in rank order",
				err, pe.Rank, pe.Addr, *connectTimeout))
		}
		fail(log, err)
	}
	defer proc.Close()
	proc.SetIOTimeout(*ioTimeout)

	plan, err := core.NewPlan(core.Params{
		N: *n, P: *segments, Mu: 5, Nu: 4, B: *taps,
	})
	if err != nil {
		fail(log, err)
	}
	if err := plan.ValidateDistributed(*size); err != nil {
		fail(log, err)
	}
	if *coded >= 0 {
		if err := core.ValidateCoded(*size, *coded); err != nil {
			fail(log, err)
		}
	}
	telemetryOn := *telemetryFlag || *telemetryInterval > 0 || *clusterJSON != "" || *watch > 0 || *httpAddr != ""
	if *report || telemetryOn {
		// The telemetry plane reports from the same recorder the -report
		// view reads; arming either arms the stage timers.
		plan.SetRecorder(instrument.New(instrument.LevelTimers))
		proc.SetRecorder(plan.Recorder())
	}

	// Tracing: every rank records into its own ring; the trace ID is
	// minted once on rank 0 and broadcast as a control frame so the
	// per-rank timelines correlate.
	var tracer *trace.Tracer
	var tid trace.ID
	ctx := context.Background()
	if *traceOut != "" || *flightDir != "" {
		tracer = trace.New(0)
		proc.SetTracer(tracer)
		if *flightDir != "" {
			tracer.SetFlightDir(*flightDir)
		}
		if *rank == 0 {
			tid = trace.NewID()
		}
		if err := core.GuardComm(func() { tid = proc.ShareTraceID(tid) }); err != nil {
			fail(log, err)
		}
		ctx = trace.WithTracer(trace.WithID(ctx, tid), tracer)
		log = log.With("trace_id", tid.String())
		log.Info("tracing armed", "out", *traceOut, "flight_dir", *flightDir)
	}

	// The cluster telemetry plane: every rank ships compact stat frames
	// to rank 0 over the transform's own links (control tag), rank 0
	// aggregates and explains. Armed by any of the telemetry flags.
	var plane *telemetry.Plane
	if telemetryOn {
		plane, err = telemetry.Start(telemetry.Config{
			Conn:     proc,
			Recorder: plan.Recorder(),
			Shape: telemetry.Shape{
				N: *n, Segments: *segments, Taps: *taps, Beta: 0.25,
				Parity: *coded, Window: window,
			},
			Interval: *telemetryInterval,
			Tracer:   tracer,
			TraceID:  tid,
		})
		if err != nil {
			fail(log, err)
		}
		log.Info("telemetry plane armed", "interval", telemetryInterval.String())
	}
	if *httpAddr != "" {
		mux := http.NewServeMux()
		rankLabel := map[string]string{"rank": fmt.Sprint(*rank)}
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			instrument.WritePrometheus(w, "", rankLabel, plan.Recorder().Snapshot())
			telemetry.WritePrometheus(w, "", plane.Snapshot())
		})
		mux.Handle("/debug/cluster", telemetry.Handler(plane.Snapshot))
		go func() {
			if herr := http.ListenAndServe(*httpAddr, mux); herr != nil {
				log.Warn("http server exited", "err", herr.Error())
			}
		}()
		log.Info("http armed", "addr", *httpAddr)
	}
	var watchStop chan struct{}
	if *watch > 0 && *rank == 0 {
		watchStop = make(chan struct{})
		go func() {
			t := time.NewTicker(*watch)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					telemetry.WriteText(os.Stderr, plane.Snapshot())
				case <-watchStop:
					return
				}
			}
		}()
	}

	src := signal.Random(*n, *seed)
	nLocal := *n / *size
	out := make([]complex128, nLocal)
	if err := core.GuardComm(proc.Barrier); err != nil {
		fail(log, err)
	}
	// The sync instant lands right after a barrier, so every rank emits
	// it at (nearly) the same wall-clock moment; `soitrace merge` aligns
	// the per-rank files on it.
	tracer.Sync(tid, *rank)
	t0 := time.Now()
	var dt core.DistributedTimes
	var deg *core.DegradedError
	localIn := src[*rank*nLocal : (*rank+1)*nLocal]
	opts := []core.DistOption{core.WithTelemetry(plane)}
	if adaptive {
		opts = append(opts, core.WithAdaptiveWindow())
	} else {
		opts = append(opts, core.WithAsyncWindow(window))
	}
	if *coded >= 0 {
		opts = append(opts, core.WithCoding(*coded))
	}
	for i := 0; i < *transforms; i++ {
		dt, err = plan.RunDistributed(ctx, proc, out, localIn, opts...)
		if *coded >= 0 && errors.As(err, &deg) {
			// The spectrum is complete and bit-exact; the error is
			// informational. Degraded completion is a success exit.
			log.Warn("transform completed degraded: dead rank(s) reconstructed from parity",
				"reconstructed", fmt.Sprint(deg.ReconstructedRanks),
				"coordinator", deg.Coordinator,
				"parity_bytes", deg.ParityBytes, "recovery_bytes", deg.RecoveryBytes)
			err = nil
		}
		if err != nil {
			fail(log, err)
		}
	}
	log.Info("transform done", "transforms", *transforms, "elapsed", time.Since(t0).String(),
		"halo", dt.Halo.String(), "convolve", dt.Convolve.String(),
		"exchange", dt.Exchange.String(), "segment_fft", dt.SegmentFT.String())
	if d, ok := plan.AdaptiveDecision(proc.Rank()); ok {
		log.Info("adaptive window", "window", d.Window, "model_prior", d.Prior,
			"decision", d.Reason)
	}

	var full []complex128
	reportRank := 0
	if *coded >= 0 {
		var at int
		full, at, err = core.GatherDegraded(proc, 0, out, deg)
		if err != nil {
			fail(log, err)
		}
		if at != 0 {
			log.Warn("gather rerouted around dead root", "landed_at", at)
		}
		reportRank = at
	} else if err := core.GuardComm(func() { full = proc.Gather(0, out) }); err != nil {
		fail(log, err)
	}
	if *rank == reportRank {
		ref, err := fft.Forward(src)
		if err != nil {
			fail(log, err)
		}
		log.Info("gathered spectrum", "points", len(full),
			"rel_err", fmt.Sprintf("%.3e", signal.RelErrL2(full, ref)),
			"snr_db", fmt.Sprintf("%.0f", signal.SNRdB(full, ref)))
	}
	if deg == nil {
		// The closing barrier needs every rank; after a degraded run the
		// dead rank can never join it.
		if err := core.GuardComm(proc.Barrier); err != nil {
			fail(log, err)
		}
	}

	// Finalize telemetry before the trace is written: every rank ships
	// its final frame; rank 0 aggregates, runs the explainer (findings
	// are mirrored into the trace as instant events) and renders the
	// cluster view. Dead ranks surface as stale findings, never a hang.
	if plane != nil {
		if watchStop != nil {
			close(watchStop)
		}
		if snap := plane.Final(); snap != nil {
			telemetry.WriteText(os.Stderr, snap)
			if len(snap.Findings) > 0 {
				top := snap.Findings[0]
				log.Info("explainer top finding", "kind", top.Kind, "rank", top.Rank,
					"ratio", fmt.Sprintf("%.2f", top.Ratio), "detail", top.Detail)
			}
			if *clusterJSON != "" {
				data, jerr := json.MarshalIndent(snap, "", "  ")
				if jerr == nil {
					jerr = os.WriteFile(*clusterJSON, append(data, '\n'), 0o644)
				}
				if jerr != nil {
					fail(log, fmt.Errorf("writing cluster snapshot: %w", jerr))
				}
				log.Info("cluster snapshot written", "path", *clusterJSON, "findings", len(snap.Findings))
			}
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(log, err)
		}
		werr := tracer.WritePerfetto(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fail(log, fmt.Errorf("writing trace: %w", werr))
		}
		log.Info("trace written", "path", *traceOut, "events", tracer.Len())
	}

	if *report {
		snap := plan.Recorder().Snapshot()
		bench.WriteStageReport(os.Stdout, fmt.Sprintf("rank %d", *rank), snap)
		nPrime := int64(*n) * 5 / 4
		perRank := 16 * nPrime * int64(*size-1) / int64(*size) / int64(*size)
		baseline := 3 * 16 * int64(*n) * int64(*size-1) / int64(*size) / int64(*size)
		model := perfmodel.Model{Beta: 0.25}
		// Counters accumulate across -transforms runs; the analytic volume
		// and the paper's 3/(1+β) ratio are per-transform, so normalize.
		perTransform := snap.Comm.AlltoallBytes / int64(*transforms)
		ratio := 0.0
		if perTransform > 0 {
			ratio = float64(baseline) / float64(perTransform)
		}
		fmt.Printf("rank %d: exchange volume %d B/transform (analytic per-rank %d B); vs triple-all-to-all %d B: ratio %.3f, paper predicts 3/(1+beta) = %.3f\n",
			*rank, perTransform, perRank, baseline, ratio, model.AsymptoticSpeedup())
		if window > 0 || adaptive {
			w := window
			wNote := "fixed"
			if d, ok := plan.AdaptiveDecision(proc.Rank()); ok {
				w = d.Window
				wNote = fmt.Sprintf("adaptive, model prior %d", d.Prior)
			}
			exWall := snap.Stages[instrument.StageExchange].Wall
			fmt.Printf("rank %d: async exchange: %d chunks streamed, window %d (%s), un-hidden %s, hidden behind compute %s, overlap %.2f, credit-stall %s\n",
				*rank, snap.Comm.StreamChunks, w, wNote, exWall,
				snap.Comm.HiddenExchange, snap.Comm.OverlapRatio(exWall), snap.Comm.CreditStall)
		}
		if *coded >= 0 {
			fmt.Printf("rank %d: coded: parity %d B, recovery %d B, %d reconstructions, %d degraded transforms\n",
				*rank, snap.Comm.ParityBytes, snap.Comm.RecoveryBytes,
				snap.Comm.Reconstructions, snap.Comm.DegradedTransforms)
		}
		ns := proc.Stats()
		fmt.Printf("rank %d: wire: %d frames out (%d B), %d frames in (%d B), %d heartbeats, %d dial retries, %d deadline, %d checksum, %d link failures\n",
			*rank, ns.FramesSent, ns.BytesSent, ns.FramesReceived, ns.BytesReceived,
			ns.HeartbeatsSent, ns.DialRetries, ns.DeadlineEvents, ns.ChecksumErrors, ns.LinkFailures)
	}
}

// UsageError is a rejected flag value: what was passed, and why it
// cannot mean anything. Flag validation fails typed like the transport
// does, so scripts can tell operator error (bad invocation, fix the
// command line) from runtime faults (dead peers, wire corruption).
type UsageError struct {
	Flag   string
	Value  string
	Reason string
}

func (e *UsageError) Error() string {
	return fmt.Sprintf("usage: %s=%s: %s", e.Flag, e.Value, e.Reason)
}

// parseAsyncWindow resolves the -async-window flag: "auto" arms the
// closed-loop controller, an integer in [0, size] fixes the window
// (0 = blocking exchange). Anything else — a non-integer, a negative,
// or a window wider than the rank count (more in-flight chunks than
// destinations could ever absorb) — is a *UsageError, never a silent
// clamp.
func parseAsyncWindow(s string, size int) (window int, adaptive bool, err error) {
	if strings.EqualFold(s, "auto") {
		return 0, true, nil
	}
	w, err := strconv.Atoi(s)
	if err != nil {
		return 0, false, &UsageError{Flag: "-async-window", Value: s,
			Reason: "must be an integer window or 'auto'"}
	}
	if w < 0 {
		return 0, false, &UsageError{Flag: "-async-window", Value: s,
			Reason: "window must not be negative (0 selects the blocking exchange)"}
	}
	if w > size {
		return 0, false, &UsageError{Flag: "-async-window", Value: s,
			Reason: fmt.Sprintf("window exceeds the rank count %d; deeper windows cannot add in-flight chunks", size)}
	}
	return w, false, nil
}

// fail exits non-zero; a typed transport fault names the failed peer and
// operation in its own structured record so operators can see at a
// glance which rank to investigate.
func fail(log *slog.Logger, err error) {
	var loss *core.UnrecoverableLossError
	if errors.As(err, &loss) {
		log.Error("unrecoverable loss: more ranks died than the parity budget covers",
			"dead_ranks", fmt.Sprint(loss.DeadRanks), "parity", loss.Parity, "err", err.Error())
		os.Exit(1)
	}
	var te *mpinet.TransportError
	if errors.As(err, &te) {
		log.Error("transport failure", "peer", te.Rank, "op", te.Op, "err", te.Err.Error())
		os.Exit(1)
	}
	log.Error("fatal", "err", err.Error())
	os.Exit(1)
}

// failPlain reports errors hit before the logger exists (bad -log-*
// flags).
func failPlain(err error) {
	fmt.Fprintln(os.Stderr, "soinode:", err)
	os.Exit(1)
}
