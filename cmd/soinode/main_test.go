package main

import (
	"errors"
	"strings"
	"testing"
)

func TestParseAsyncWindow(t *testing.T) {
	const size = 4
	cases := []struct {
		in       string
		window   int
		adaptive bool
		wantErr  string // substring of the usage error, "" = accepted
	}{
		{"0", 0, false, ""},
		{"1", 1, false, ""},
		{"4", 4, false, ""},
		{"auto", 0, true, ""},
		{"AUTO", 0, true, ""},
		{"-1", 0, false, "negative"},
		{"-17", 0, false, "negative"},
		{"5", 0, false, "exceeds the rank count"},
		{"2.5", 0, false, "integer"},
		{"wide", 0, false, "integer"},
		{"", 0, false, "integer"},
	}
	for _, tc := range cases {
		w, adaptive, err := parseAsyncWindow(tc.in, size)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("parseAsyncWindow(%q): unexpected error %v", tc.in, err)
				continue
			}
			if w != tc.window || adaptive != tc.adaptive {
				t.Errorf("parseAsyncWindow(%q) = (%d, %v), want (%d, %v)",
					tc.in, w, adaptive, tc.window, tc.adaptive)
			}
			continue
		}
		var ue *UsageError
		if !errors.As(err, &ue) {
			t.Errorf("parseAsyncWindow(%q): error %v is not a *UsageError", tc.in, err)
			continue
		}
		if ue.Flag != "-async-window" {
			t.Errorf("parseAsyncWindow(%q): usage error names flag %q", tc.in, ue.Flag)
		}
		if !strings.Contains(ue.Reason, tc.wantErr) {
			t.Errorf("parseAsyncWindow(%q): reason %q does not mention %q", tc.in, ue.Reason, tc.wantErr)
		}
	}
}
