package soifft

import (
	"container/list"
	"fmt"
	"io"
	"sync"
)

// PlanKey canonically identifies a plan configuration for caching: the
// parameters that determine the transform NewPlan would build, with the
// same defaulting rules applied (default segment count, accuracy preset
// resolved to a tap count, taps shrunk for short segments). Two option
// lists that produce the same transform produce the same key.
type PlanKey struct {
	N, Segments, Mu, Nu, Taps int
	Family                    WindowFamily
}

// String renders the key in a compact, stable form ("n=4096 p=8 mu=5
// nu=4 b=72 win=auto") used by the serving metrics.
func (k PlanKey) String() string {
	return fmt.Sprintf("n=%d p=%d mu=%d nu=%d b=%d win=%s",
		k.N, k.Segments, k.Mu, k.Nu, k.Taps, familyName(k.Family))
}

func familyName(f WindowFamily) string {
	switch f {
	case WindowGaussian:
		return "gaussian"
	case WindowKaiser:
		return "kaiser"
	case WindowCompact:
		return "compact"
	default:
		return "auto"
	}
}

// KeyOf resolves options exactly as NewPlan does and returns the
// canonical cache key, without building any tables.
func KeyOf(n int, opts ...Option) PlanKey {
	o := options{segments: 0, mu: 5, nu: 4, taps: 72}
	for _, fn := range opts {
		fn(&o)
	}
	if o.segments == 0 {
		o.segments = defaultSegments(n)
	}
	b := o.taps
	if o.useAcc {
		b = o.accuracy.preset().B
	}
	if m := nSafeM(n, o.segments); b > m && m >= 2 {
		b = m
	}
	return PlanKey{N: n, Segments: o.segments, Mu: o.mu, Nu: o.nu, Taps: b, Family: o.family}
}

// Key returns the canonical cache key of a built plan. Plans loaded from
// wisdom key identically to plans built fresh with the same parameters,
// so a cache warmed from wisdom files serves later NewPlan-shaped
// requests without rebuilding.
func (p *Plan) Key() PlanKey {
	prm := p.inner.Params()
	fam := WindowAuto
	if ref, err := windowRefOf(prm.Win); err == nil {
		switch ref.Family {
		case "gaussian":
			fam = WindowGaussian
		case "kaiser-bessel":
			fam = WindowKaiser
		case "compact-bump":
			fam = WindowCompact
		}
	}
	return PlanKey{N: prm.N, Segments: prm.P, Mu: prm.Mu, Nu: prm.Nu, Taps: prm.B, Family: fam}
}

// CacheStats is a point-in-time snapshot of a PlanCache.
type CacheStats struct {
	Size, Capacity          int
	Hits, Misses, Evictions uint64
	// PerPlan lists hit counts per resident plan, most recently used
	// first.
	PerPlan []PlanStats
}

// PlanStats is the per-plan slice of CacheStats.
type PlanStats struct {
	Key  PlanKey
	Hits uint64
}

// HitRate returns hits / (hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// PlanCache is a bounded LRU cache of plans keyed by canonical
// parameters. It amortizes plan construction (the window design the
// paper's framework amortizes across transforms) across callers: the
// serving layer resolves every request through one. Lookups for the same
// missing key are coalesced — concurrent callers wait for a single
// build. A PlanCache is safe for concurrent use.
type PlanCache struct {
	mu        sync.Mutex
	capacity  int
	lru       *list.List // of *cacheEntry, front = most recent
	entries   map[PlanKey]*cacheEntry
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key   PlanKey
	plan  *Plan
	err   error
	ready chan struct{} // closed when plan/err are set
	elem  *list.Element
	hits  uint64
}

// NewPlanCache returns a cache holding at most capacity plans
// (capacity <= 0 means 16).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 16
	}
	return &PlanCache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[PlanKey]*cacheEntry),
	}
}

// Get returns the plan for (n, opts), building and caching it on a miss.
// The second result reports whether the plan came from the cache (a
// lookup that joins an in-flight build counts as a hit).
func (c *PlanCache) Get(n int, opts ...Option) (*Plan, bool, error) {
	return c.get(KeyOf(n, opts...), func() (*Plan, error) { return NewPlan(n, opts...) })
}

// GetKey is Get addressed by a canonical key (the serving layer's path:
// requests arrive as explicit parameter tuples).
func (c *PlanCache) GetKey(key PlanKey) (*Plan, bool, error) {
	return c.get(key, func() (*Plan, error) {
		return NewPlan(key.N,
			WithSegments(key.Segments),
			WithOversampling(key.Mu, key.Nu),
			WithTaps(key.Taps),
			WithWindow(key.Family))
	})
}

func (c *PlanCache) get(key PlanKey, build func() (*Plan, error)) (*Plan, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		e.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		return e.plan, true, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.plan, e.err = build()
	close(e.ready)

	c.mu.Lock()
	if e.err != nil {
		// Do not cache failures; later callers retry the build.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
	} else {
		e.elem = c.lru.PushFront(e)
		c.trimLocked()
	}
	c.mu.Unlock()
	return e.plan, false, e.err
}

// Add inserts a pre-built plan (for example one loaded from wisdom)
// under its canonical key and returns that key. An existing entry for
// the key is replaced.
func (c *PlanCache) Add(p *Plan) PlanKey {
	key := p.Key()
	e := &cacheEntry{key: key, plan: p, ready: make(chan struct{})}
	close(e.ready)
	c.mu.Lock()
	if old, ok := c.entries[key]; ok && old.elem != nil {
		c.lru.Remove(old.elem)
	}
	c.entries[key] = e
	e.elem = c.lru.PushFront(e)
	c.trimLocked()
	c.mu.Unlock()
	return key
}

// WarmWisdom reads one wisdom document from r, rebuilds its plan and
// inserts it into the cache, returning the plan. Use it at server
// startup to pre-pay plan construction for known traffic shapes.
func (c *PlanCache) WarmWisdom(r io.Reader) (*Plan, error) {
	p, err := ReadWisdom(r)
	if err != nil {
		return nil, err
	}
	c.Add(p)
	return p, nil
}

// CachedPlan pairs a resident plan with its canonical key.
type CachedPlan struct {
	Key  PlanKey
	Plan *Plan
}

// Plans returns the resident plans, most recently used first — the
// enumeration observability endpoints use to render every plan's
// Report under its key. The slice is a snapshot; the plans are the live
// cached instances.
func (c *PlanCache) Plans() []CachedPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CachedPlan, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if e.plan != nil {
			out = append(out, CachedPlan{Key: e.key, Plan: e.plan})
		}
	}
	return out
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Size:      c.lru.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		st.PerPlan = append(st.PerPlan, PlanStats{Key: e.key, Hits: e.hits})
	}
	return st
}

// trimLocked evicts least-recently-used completed entries past capacity.
func (c *PlanCache) trimLocked() {
	for c.lru.Len() > c.capacity {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.evictions++
	}
}
