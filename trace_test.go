package soifft_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"

	"soifft"
	"soifft/internal/signal"
)

// perfettoDoc decodes the exported trace-event JSON for assertions.
type perfettoDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTracedDistributedTransform is the end-to-end tracing acceptance
// check: a distributed transform over 4 in-process ranks under one
// traced context must export a Perfetto timeline where every rank
// contributed spans, every span carries the caller's trace ID, and each
// rank shows exactly one all-to-all exchange — the algorithm's
// single-communication signature, now visible per request.
func TestTracedDistributedTransform(t *testing.T) {
	const (
		n     = 4096
		ranks = 4
	)
	plan, err := soifft.NewPlan(n, soifft.WithSegments(8), soifft.WithTaps(48))
	if err != nil {
		t.Fatal(err)
	}
	w, err := soifft.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	tracer := soifft.NewTracer(1 << 12)
	id := soifft.NewTraceID()
	ctx := soifft.WithTracer(soifft.WithTraceID(context.Background(), id), tracer)

	src := signal.Random(n, 21)
	dst := make([]complex128, n)
	if err := plan.TransformDistributedContext(ctx, w, dst, src); err != nil {
		t.Fatal(err)
	}
	ref, err := soifft.FFT(src)
	if err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(dst, ref); e > 1e-3 {
		t.Fatalf("traced transform wrong: rel err %.3e", e)
	}

	var buf bytes.Buffer
	if err := tracer.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	exchanges := map[int]int{}   // pid -> exchange begin count
	spansPerPid := map[int]int{} // pid -> all begins
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "B" {
			continue
		}
		spansPerPid[ev.PID]++
		if got := ev.Args["trace"]; got != id.String() {
			t.Fatalf("span %q on pid %d carries trace %v, want %v", ev.Name, ev.PID, got, id)
		}
		if ev.Name == "exchange" {
			exchanges[ev.PID]++
		}
	}
	for r := 0; r < ranks; r++ {
		pid := r + 1
		if spansPerPid[pid] == 0 {
			t.Errorf("rank %d contributed no spans", r)
		}
		if exchanges[pid] != 1 {
			t.Errorf("rank %d shows %d exchange spans, want exactly 1 (the single all-to-all)", r, exchanges[pid])
		}
	}
}

// TestTracingOffOverheadGuard bounds the cost of the disabled tracing
// path: running through TransformContext with no tracer anywhere must
// stay within 1.5× of the plain entry point (best of several runs — a
// deliberately lenient bound so scheduler noise cannot fail CI; the
// precise number comes from BenchmarkObservability's tracer rows).
func TestTracingOffOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	const n = 8192
	plan, err := soifft.NewPlan(n, soifft.WithSegments(8), soifft.WithTaps(48))
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 7)
	dst := make([]complex128, n)
	ctx := context.Background()

	best := func(run func() error) time.Duration {
		bestD := time.Duration(math.MaxInt64)
		for i := 0; i < 10; i++ {
			t0 := time.Now()
			if err := run(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	plain := func() error { return plan.Transform(dst, src) }
	untraced := func() error { return plan.TransformContext(ctx, dst, src) }
	best(plain) // warm caches before measuring
	dPlain, dOff := best(plain), best(untraced)
	if float64(dOff) > 1.5*float64(dPlain) {
		t.Errorf("tracing-off overhead: plain %v, untraced ctx %v (>1.5x)", dPlain, dOff)
	}
}
