package soifft

import (
	"fmt"

	"soifft/internal/conv"
	"soifft/internal/fft"
	"soifft/internal/mpi"
)

// FilterSpectrum precomputes the frequency response of a filter for
// repeated use with Convolve. h must have length N.
func FilterSpectrum(h []complex128) ([]complex128, error) {
	return fft.Forward(h)
}

// Convolve computes the cyclic convolution dst = src ⊛ h over the world
// using two SOI passes (forward, pointwise multiply by the cached filter
// spectrum, inverse) — 2 all-to-alls of (1+β)N points per convolution,
// versus 6 for a conventional in-order distributed FFT pair. This is the
// application the paper's introduction motivates: chained transforms
// compound SOI's communication saving.
//
// filterSpec is the full-length spectrum from FilterSpectrum; dst and
// src have length N and are scattered block-wise like
// TransformDistributed.
func (p *Plan) Convolve(w *World, dst, src, filterSpec []complex128) error {
	n := p.N()
	r := w.Ranks()
	if len(dst) != n || len(src) != n || len(filterSpec) != n {
		return fmt.Errorf("soifft: need length %d, got dst %d src %d filter %d: %w",
			n, len(dst), len(src), len(filterSpec), ErrLength)
	}
	if err := p.inner.ValidateDistributed(r); err != nil {
		return err
	}
	nLocal := n / r
	return w.inner.Run(func(c *mpi.Comm) error {
		return conv.SOI(c, p.inner,
			dst[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			filterSpec[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
	})
}
