package soifft

import (
	"context"
	"fmt"

	"soifft/internal/mpi"
)

// World is a simulated cluster: a fixed set of ranks (goroutines) joined
// by a message-passing fabric with MPI semantics. It stands in for the
// MPI layer of the paper's implementation and counts every byte that
// would cross a real interconnect.
type World struct {
	inner *mpi.World
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(ranks int) (*World, error) {
	w, err := mpi.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &World{inner: w}, nil
}

// Ranks returns the world size.
func (w *World) Ranks() int { return w.inner.Size() }

// CommStats summarizes the communication a run generated.
type CommStats struct {
	// Alltoalls counts global all-to-all exchanges — 1 for SOI, 3 for
	// conventional distributed FFTs.
	Alltoalls int64
	// AlltoallBytes is the total inter-rank payload of those exchanges.
	AlltoallBytes int64
	// Messages and Bytes count all wire traffic, halo exchanges included.
	Messages int64
	Bytes    int64
}

// Stats snapshots the world's accumulated communication counters.
func (w *World) Stats() CommStats {
	s := w.inner.Stats()
	return CommStats{
		Alltoalls:     s.Alltoalls,
		AlltoallBytes: s.AlltoallBytes,
		Messages:      s.P2PMessages,
		Bytes:         s.P2PBytes,
	}
}

// TransformDistributed runs the SOI transform over the world: src and
// dst are the full N-point input/output on the caller's side, scattered
// and gathered block-wise (rank p works on elements [p·N/R, (p+1)·N/R)).
// Communication per rank is one small halo exchange plus a single
// all-to-all of (1+β)·N/R points.
func (p *Plan) TransformDistributed(w *World, dst, src []complex128) error {
	return p.TransformDistributedContext(context.Background(), w, dst, src)
}

// InverseDistributed is TransformDistributed for the inverse DFT; the
// communication profile (one halo, one all-to-all) is unchanged.
func (p *Plan) InverseDistributed(w *World, dst, src []complex128) error {
	return p.InverseDistributedContext(context.Background(), w, dst, src)
}

// RunSPMD executes fn once per rank (SPMD style) and waits for all ranks;
// the first error aborts the world. It exposes the raw communicator for
// advanced distributed use.
func (w *World) RunSPMD(fn func(c *mpi.Comm) error) error { return w.inner.Run(fn) }

// TransformSegmentDistributed computes a single frequency segment over
// the world: the input is scattered block-wise, every rank contributes
// its convolution blocks' lane-s values, and the segment (length
// SegmentLen) is assembled with one gather — no all-to-all at all. This
// is the cheapest way to inspect part of a distributed spectrum.
func (p *Plan) TransformSegmentDistributed(w *World, src []complex128, s int) ([]complex128, error) {
	n := p.N()
	r := w.Ranks()
	if len(src) != n {
		return nil, fmt.Errorf("soifft: need length %d, got %d: %w", n, len(src), ErrLength)
	}
	if err := p.inner.ValidateDistributed(r); err != nil {
		return nil, err
	}
	nLocal := n / r
	var out []complex128
	err := w.inner.Run(func(c *mpi.Comm) error {
		seg, err := p.inner.RunDistributedSegment(c,
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal], s, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = seg
		}
		return nil
	})
	return out, err
}
