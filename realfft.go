package soifft

import (
	"fmt"
	"sync"

	"soifft/internal/fft"
)

// RFFT computes the DFT of a real-valued sequence of even length n,
// returning the non-redundant half spectrum: n/2+1 complex bins
// X[0..n/2]. Real input implies Hermitian (conjugate) symmetry,
// X[n−k] = conj(X[k]), so the remaining bins carry no information;
// X[0] and X[n/2] (DC and Nyquist) are purely real. It costs one
// complex transform of length n/2 plus an O(n) untangling pass —
// roughly half a full complex FFT.
func RFFT(x []float64) ([]complex128, error) {
	p, err := NewRealPlan(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x)/2+1)
	if err := p.Forward(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// IRFFT inverts RFFT: given the half spectrum X[0..n/2] (n/2+1 bins,
// Hermitian layout — the caller supplies only the non-redundant half,
// with X[0] and X[n/2] real), it returns the length-n real sequence,
// scaled so IRFFT(RFFT(x)) == x. The imaginary parts of spec[0] and
// spec[n/2] are ignored.
func IRFFT(spec []complex128) ([]float64, error) {
	if len(spec) < 2 {
		return nil, fmt.Errorf("soifft: half spectrum needs at least 2 bins, got %d: %w", len(spec), ErrLength)
	}
	n := (len(spec) - 1) * 2
	p, err := NewRealPlan(n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	if err := p.Inverse(out, spec); err != nil {
		return nil, err
	}
	return out, nil
}

// RealPlan is a reusable plan for real-input transforms of one even
// length; it is safe for concurrent use. For one-off transforms RFFT and
// IRFFT are simpler (they fetch a cached plan internally).
type RealPlan struct {
	inner *fft.RealPlan
}

// NewRealPlan returns a cached real-input plan for even length n ≥ 2.
// Plans are immutable and shared: repeated calls with the same n return
// the same plan, so per-call cost after the first is a map lookup.
func NewRealPlan(n int) (*RealPlan, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("soifft: real transform needs even length >= 2, got %d: %w", n, ErrLength)
	}
	if p, ok := realPlans.Load(n); ok {
		return p.(*RealPlan), nil
	}
	inner, err := fft.NewRealPlan(n)
	if err != nil {
		return nil, err
	}
	p, _ := realPlans.LoadOrStore(n, &RealPlan{inner: inner})
	return p.(*RealPlan), nil
}

// realPlans caches real-input plans by length (plans are immutable).
var realPlans sync.Map

// N returns the real transform length.
func (p *RealPlan) N() int { return p.inner.N() }

// Forward writes the half spectrum of src into dst: len(src) must be N
// and len(dst) N/2+1 (layout as documented on RFFT).
func (p *RealPlan) Forward(dst []complex128, src []float64) error {
	n := p.inner.N()
	if len(src) != n || len(dst) != n/2+1 {
		return fmt.Errorf("soifft: real forward needs src %d dst %d, got %d/%d: %w",
			n, n/2+1, len(src), len(dst), ErrLength)
	}
	p.inner.Forward(dst, src)
	return nil
}

// Inverse reconstructs the real sequence from its half spectrum, scaled
// by 1/N: len(src) must be N/2+1 and len(dst) N.
func (p *RealPlan) Inverse(dst []float64, src []complex128) error {
	n := p.inner.N()
	if len(dst) != n || len(src) != n/2+1 {
		return fmt.Errorf("soifft: real inverse needs src %d dst %d, got %d/%d: %w",
			n/2+1, n, len(src), len(dst), ErrLength)
	}
	p.inner.Inverse(dst, src)
	return nil
}
