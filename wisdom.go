package soifft

import (
	"encoding/json"
	"fmt"
	"io"

	"soifft/internal/core"
	"soifft/internal/window"
)

// Wisdom is a serializable description of a plan's tuning — the SOI
// analogue of FFTW's wisdom files. Saving and reloading skips the window
// design search on startup; the numerical tables are rebuilt
// deterministically from these parameters, so a reloaded plan computes
// bit-identical results.
type Wisdom struct {
	Version  int       `json:"version"`
	N        int       `json:"n"`
	Segments int       `json:"segments"`
	Mu       int       `json:"mu"`
	Nu       int       `json:"nu"`
	Taps     int       `json:"taps"`
	Workers  int       `json:"workers,omitempty"`
	Window   WindowRef `json:"window"`
}

// WindowRef names a window family and its parameters.
type WindowRef struct {
	Family string    `json:"family"`
	Params []float64 `json:"params,omitempty"`
}

const wisdomVersion = 1

// WriteWisdom serializes the plan's tuning as JSON.
func (p *Plan) WriteWisdom(w io.Writer) error {
	prm := p.inner.Params()
	ref, err := windowRefOf(prm.Win)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Wisdom{
		Version:  wisdomVersion,
		N:        prm.N,
		Segments: prm.P,
		Mu:       prm.Mu,
		Nu:       prm.Nu,
		Taps:     prm.B,
		Workers:  prm.Workers,
		Window:   ref,
	})
}

// ReadWisdom reconstructs a plan from serialized wisdom.
func ReadWisdom(r io.Reader) (*Plan, error) {
	var wd Wisdom
	if err := json.NewDecoder(r).Decode(&wd); err != nil {
		return nil, fmt.Errorf("soifft: decoding wisdom: %w", err)
	}
	if wd.Version != wisdomVersion {
		return nil, fmt.Errorf("soifft: wisdom version %d unsupported (want %d)", wd.Version, wisdomVersion)
	}
	win, err := windowFromRef(wd.Window)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewPlan(core.Params{
		N: wd.N, P: wd.Segments, Mu: wd.Mu, Nu: wd.Nu, B: wd.Taps,
		Workers: wd.Workers, Win: win,
	})
	if err != nil {
		return nil, err
	}
	return &Plan{inner: inner}, nil
}

func windowRefOf(w window.Window) (WindowRef, error) {
	switch v := w.(type) {
	case window.TauSigma:
		return WindowRef{Family: "tau-sigma", Params: []float64{v.Tau, v.Sigma}}, nil
	case window.Gaussian:
		return WindowRef{Family: "gaussian", Params: []float64{v.A}}, nil
	case window.KaiserBessel:
		return WindowRef{Family: "kaiser-bessel", Params: []float64{v.Shape, v.HalfWidth}}, nil
	case *window.Tabulated:
		if beta, tMax, ok := v.BumpParams(); ok {
			return WindowRef{Family: "compact-bump", Params: []float64{beta, tMax}}, nil
		}
		return WindowRef{}, fmt.Errorf("soifft: custom tabulated window %v is not serializable", v)
	default:
		return WindowRef{}, fmt.Errorf("soifft: window %v is not serializable as wisdom", w)
	}
}

func windowFromRef(ref WindowRef) (window.Window, error) {
	need := func(n int) error {
		if len(ref.Params) != n {
			return fmt.Errorf("soifft: window family %q needs %d params, got %d",
				ref.Family, n, len(ref.Params))
		}
		return nil
	}
	switch ref.Family {
	case "tau-sigma":
		if err := need(2); err != nil {
			return nil, err
		}
		return window.TauSigma{Tau: ref.Params[0], Sigma: ref.Params[1]}, nil
	case "gaussian":
		if err := need(1); err != nil {
			return nil, err
		}
		return window.Gaussian{A: ref.Params[0]}, nil
	case "kaiser-bessel":
		if err := need(2); err != nil {
			return nil, err
		}
		return window.KaiserBessel{Shape: ref.Params[0], HalfWidth: ref.Params[1]}, nil
	case "compact-bump":
		if err := need(2); err != nil {
			return nil, err
		}
		return window.NewCompactBump(ref.Params[0], ref.Params[1])
	default:
		return nil, fmt.Errorf("soifft: unknown window family %q", ref.Family)
	}
}
