package soifft

import (
	"bytes"
	"strings"
	"testing"

	"soifft/internal/signal"
)

func TestWisdomRoundTrip(t *testing.T) {
	const n = 2048
	orig, err := NewPlan(n, WithTaps(48))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteWisdom(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tau-sigma") {
		t.Errorf("wisdom should name the window family: %s", buf.String())
	}
	re, err := ReadWisdom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if re.N() != n || re.Taps() != 48 || re.Segments() != orig.Segments() {
		t.Errorf("reloaded plan differs: N=%d B=%d P=%d", re.N(), re.Taps(), re.Segments())
	}
	// Bit-identical results.
	src := signal.Random(n, 5)
	a := make([]complex128, n)
	b := make([]complex128, n)
	if err := orig.Transform(a, src); err != nil {
		t.Fatal(err)
	}
	if err := re.Transform(b, src); err != nil {
		t.Fatal(err)
	}
	if e := signal.MaxAbsErr(a, b); e != 0 {
		t.Errorf("reloaded plan differs by %.3e", e)
	}
}

func TestWisdomErrors(t *testing.T) {
	if _, err := ReadWisdom(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := ReadWisdom(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("expected version error")
	}
	if _, err := ReadWisdom(strings.NewReader(
		`{"version":1,"n":64,"segments":2,"mu":5,"nu":4,"taps":8,` +
			`"window":{"family":"nope"}}`)); err == nil {
		t.Error("expected unknown family error")
	}
	if _, err := ReadWisdom(strings.NewReader(
		`{"version":1,"n":64,"segments":2,"mu":5,"nu":4,"taps":8,` +
			`"window":{"family":"tau-sigma","params":[1]}}`)); err == nil {
		t.Error("expected params count error")
	}
	// Invalid core parameters must be rejected on reload too.
	if _, err := ReadWisdom(strings.NewReader(
		`{"version":1,"n":63,"segments":2,"mu":5,"nu":4,"taps":8,` +
			`"window":{"family":"gaussian","params":[40]}}`)); err == nil {
		t.Error("expected core validation error")
	}
}

func TestWisdomCompactBump(t *testing.T) {
	// A compact-bump window plan must round-trip through wisdom.
	w, err := windowFromRef(WindowRef{Family: "compact-bump", Params: []float64{0.25, 56}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := windowRefOf(w)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Family != "compact-bump" || ref.Params[0] != 0.25 || ref.Params[1] != 56 {
		t.Errorf("round-tripped ref = %+v", ref)
	}
}
