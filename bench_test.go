package soifft

// One benchmark per table/figure of the paper's evaluation (Section 7),
// plus microbenchmarks of the kernels the figures are built from. The
// figure benchmarks regenerate the experiment's data each iteration and
// report the headline quantity (speedup, SNR, …) as a custom metric;
// `go run ./cmd/soibench` prints the same data as tables.

import (
	"context"
	"math"
	"testing"

	"soifft/internal/baseline"
	"soifft/internal/bench"
	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/netsim"
	"soifft/internal/signal"
)

func benchConfig(b *testing.B) bench.Config {
	b.Helper()
	cfg, err := bench.DefaultConfig()
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

// BenchmarkTable1Systems regenerates the system-configuration table.
func BenchmarkTable1Systems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := bench.Table1(); len(tb.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig5EndeavorWeakScaling regenerates the fat-tree comparison
// and reports the 64-node SOI speedup (paper: up to ~1.9x).
func BenchmarkFig5EndeavorWeakScaling(b *testing.B) {
	cfg := benchConfig(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		if tb := bench.Fig5(cfg); len(tb.Rows) == 0 {
			b.Fatal("empty figure")
		}
		m := cfg.Cal.Model(netsim.Endeavor(), cfg.PointsPerNode, cfg.Beta, cfg.B)
		speedup = m.Speedup(64)
	}
	b.ReportMetric(speedup, "speedup64")
}

// BenchmarkFig6GordonWeakScaling regenerates the 3-D torus comparison
// and reports the 64-node speedup (paper: grows beyond Endeavor's).
func BenchmarkFig6GordonWeakScaling(b *testing.B) {
	cfg := benchConfig(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		if tb := bench.Fig6(cfg); len(tb.Rows) == 0 {
			b.Fatal("empty figure")
		}
		m := cfg.Cal.Model(netsim.Gordon(), cfg.PointsPerNode, cfg.Beta, cfg.B)
		speedup = m.Speedup(64)
	}
	b.ReportMetric(speedup, "speedup64")
}

// BenchmarkFig7AccuracyTradeoff regenerates the accuracy ladder (real
// transforms per rung) and reports the speedup of the lowest rung.
func BenchmarkFig7AccuracyTradeoff(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		tb, err := bench.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) < 4 {
			b.Fatal("missing rungs")
		}
	}
}

// BenchmarkFig8EthernetSpeedup regenerates the communication-bound 10GbE
// experiment; the reported speedup should sit near 3/(1+β) = 2.4.
func BenchmarkFig8EthernetSpeedup(b *testing.B) {
	cfg := benchConfig(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		if tb := bench.Fig8(cfg); len(tb.Rows) == 0 {
			b.Fatal("empty figure")
		}
		m := cfg.Cal.Model(netsim.TenGigE(), cfg.PointsPerNode, cfg.Beta, cfg.B)
		speedup = m.Speedup(32)
	}
	b.ReportMetric(speedup, "speedup32")
}

// BenchmarkFig9Projection regenerates the torus projection and reports
// the Jaguar-scale (16K nodes) speedup at c = 1.
func BenchmarkFig9Projection(b *testing.B) {
	cfg := benchConfig(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		tb := bench.Fig9(cfg)
		if len(tb.Rows) != 9 {
			b.Fatal("bad projection")
		}
		m := cfg.Cal.Model(netsim.Gordon(), cfg.PointsPerNode, cfg.Beta, cfg.B)
		speedup = m.Speedup(16000)
	}
	b.ReportMetric(speedup, "speedup16k")
}

// BenchmarkSNRFullAccuracy measures the real SOI SNR at the paper's
// full-accuracy setting (paper: ~290 dB, one digit below conventional).
func BenchmarkSNRFullAccuracy(b *testing.B) {
	const n = 4096
	plan, err := NewPlan(n, WithAccuracy(AccuracyFull))
	if err != nil {
		b.Fatal(err)
	}
	src := signal.Random(n, 9)
	ref, err := FFT(src)
	if err != nil {
		b.Fatal(err)
	}
	got := make([]complex128, n)
	var snr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Transform(got, src); err != nil {
			b.Fatal(err)
		}
		snr = signal.SNRdB(got, ref)
	}
	b.ReportMetric(snr, "SNRdB")
}

// --- kernel microbenchmarks ---

func BenchmarkFFTForward(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			p, err := fft.CachedPlan(n)
			if err != nil {
				b.Fatal(err)
			}
			src := signal.Random(n, 1)
			dst := make([]complex128, n)
			b.SetBytes(int64(n) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Forward(dst, src)
			}
			reportGFLOPS(b, 5*float64(n)*math.Log2(float64(n)))
		})
	}
}

func BenchmarkFFTBluestein(b *testing.B) {
	const n = 65537 // prime
	p, err := fft.CachedPlan(n)
	if err != nil {
		b.Fatal(err)
	}
	src := signal.Random(n, 2)
	dst := make([]complex128, n)
	b.SetBytes(int64(n) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, src)
	}
}

// BenchmarkConvolve measures the SOI convolution kernel W·x — the
// "extra" arithmetic SOI trades for communication (Section 6 loops a–d).
func BenchmarkConvolve(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			p := core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 72}
			cp, err := core.NewPlan(p)
			if err != nil {
				b.Fatal(err)
			}
			src := signal.Random(n, 3)
			ext := make([]complex128, n+cp.HaloLen())
			copy(ext, src)
			copy(ext[n:], src[:cp.HaloLen()])
			out := make([]complex128, cp.NPrime())
			b.SetBytes(int64(n) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp.ConvolveRange(out, ext, 0, cp.MPrime(), 0)
			}
			reportGFLOPS(b, float64(cp.ConvFlops()))
		})
	}
}

// BenchmarkTransform measures the full shared-memory SOI pipeline.
func BenchmarkTransform(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			plan, err := NewPlan(n)
			if err != nil {
				b.Fatal(err)
			}
			src := signal.Random(n, 4)
			dst := make([]complex128, n)
			b.SetBytes(int64(n) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := plan.Transform(dst, src); err != nil {
					b.Fatal(err)
				}
			}
			reportGFLOPS(b, 5*float64(n)*math.Log2(float64(n)))
		})
	}
}

// BenchmarkObservability measures the cost of each instrumentation level
// on the shared-memory transform; the "off" row is the basis of the
// near-zero-overhead-when-off claim (compare against BenchmarkTransform
// or the plain sub-benchmark here).
func BenchmarkObservability(b *testing.B) {
	const n = 1 << 18
	levels := []struct {
		name string
		opts []Option
	}{
		{"plain", nil},
		{"off", []Option{WithInstrumentation(InstrumentOff)}},
		{"counters", []Option{WithInstrumentation(InstrumentCounters)}},
		{"timers", []Option{WithInstrumentation(InstrumentTimers)}},
	}
	for _, lv := range levels {
		b.Run(lv.name, func(b *testing.B) {
			plan, err := NewPlan(n, lv.opts...)
			if err != nil {
				b.Fatal(err)
			}
			src := signal.Random(n, 4)
			dst := make([]complex128, n)
			b.SetBytes(int64(n) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := plan.Transform(dst, src); err != nil {
					b.Fatal(err)
				}
			}
			reportGFLOPS(b, 5*float64(n)*math.Log2(float64(n)))
		})
	}

	// Event-tracing rows: "tracer-off" is the disabled path (context
	// plumbed, no tracer anywhere — must price like plain; the ≤2% CI
	// guard compares these two), "tracer-on" records every stage span
	// into the ring.
	tracerRuns := []struct {
		name string
		ctx  func() context.Context
	}{
		{"tracer-off", context.Background},
		{"tracer-on", func() context.Context {
			return WithTracer(WithTraceID(context.Background(), NewTraceID()), NewTracer(0))
		}},
	}
	for _, tc := range tracerRuns {
		b.Run(tc.name, func(b *testing.B) {
			plan, err := NewPlan(n)
			if err != nil {
				b.Fatal(err)
			}
			ctx := tc.ctx()
			src := signal.Random(n, 4)
			dst := make([]complex128, n)
			b.SetBytes(int64(n) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := plan.TransformContext(ctx, dst, src); err != nil {
					b.Fatal(err)
				}
			}
			reportGFLOPS(b, 5*float64(n)*math.Log2(float64(n)))
		})
	}
}

// BenchmarkDistributedSOI runs the real distributed pipeline end to end
// on in-process ranks.
func BenchmarkDistributedSOI(b *testing.B) {
	const n, ranks = 1 << 18, 8
	p := core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 72}
	pl, err := core.NewPlan(p)
	if err != nil {
		b.Fatal(err)
	}
	src := signal.Random(n, 5)
	dst := make([]complex128, n)
	nLocal := n / ranks
	b.SetBytes(int64(n) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := mpi.NewWorld(ranks)
		if err != nil {
			b.Fatal(err)
		}
		err = w.Run(func(c *mpi.Comm) error {
			_, err := pl.RunDistributed(context.Background(), c,
				dst[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
				src[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSixStepBaseline runs the triple-all-to-all comparator.
func BenchmarkSixStepBaseline(b *testing.B) {
	const n, ranks = 1 << 18, 8
	src := signal.Random(n, 6)
	dst := make([]complex128, n)
	nLocal := n / ranks
	alg := baseline.SixStep{}
	b.SetBytes(int64(n) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := mpi.NewWorld(ranks)
		if err != nil {
			b.Fatal(err)
		}
		err = w.Run(func(c *mpi.Comm) error {
			_, err := alg.Transform(c,
				dst[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
				src[c.Rank()*nLocal:(c.Rank()+1)*nLocal], n)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlltoall measures the in-process exchange primitive itself.
func BenchmarkAlltoall(b *testing.B) {
	const ranks, chunk = 8, 1 << 14
	b.SetBytes(int64(ranks) * ranks * chunk * 16)
	for i := 0; i < b.N; i++ {
		w, err := mpi.NewWorld(ranks)
		if err != nil {
			b.Fatal(err)
		}
		err = w.Run(func(c *mpi.Comm) error {
			send := make([]complex128, ranks*chunk)
			c.Alltoall(send, chunk)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return itoa(n>>20) + "Mi"
	case n >= 1<<10 && n%(1<<10) == 0:
		return itoa(n>>10) + "Ki"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func reportGFLOPS(b *testing.B, flopsPerOp float64) {
	b.ReportMetric(flopsPerOp*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkConvolveJammed measures the Section 6 unroll-and-jam kernel
// against the straightforward loop nest (BenchmarkConvolve).
func BenchmarkConvolveJammed(b *testing.B) {
	const n = 1 << 18
	p := core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 72}
	cp, err := core.NewPlan(p)
	if err != nil {
		b.Fatal(err)
	}
	src := signal.Random(n, 3)
	ext := make([]complex128, n+cp.HaloLen())
	copy(ext, src)
	copy(ext[n:], src[:cp.HaloLen()])
	out := make([]complex128, cp.NPrime())
	b.SetBytes(int64(n) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.ConvolveRangeJammed(out, ext, 0, cp.MPrime(), 0)
	}
	reportGFLOPS(b, float64(cp.ConvFlops()))
}
