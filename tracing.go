package soifft

import (
	"context"
	"io"

	"soifft/internal/trace"
)

// Tracer records event-level timelines — spans, instants, counters —
// into a fixed-size ring buffer that doubles as a flight recorder.
// Attach one to a plan with SetTracer (or carry it on a context with
// WithTracer) and every transform emits begin/end spans per pipeline
// stage, per rank on distributed runs; export the ring with
// WritePerfetto and load the JSON in https://ui.perfetto.dev. A nil
// *Tracer is valid everywhere and free: the traced code paths pay one
// pointer test.
//
// Tracer is an alias of the internal implementation so plans, the
// serve layer and the commands share one ring type.
type Tracer = trace.Tracer

// TraceID correlates every event of one logical request across
// goroutines, pipeline stages and ranks. Zero means "untraced".
type TraceID = trace.ID

// NewTracer builds a tracer whose ring holds at least capacity events
// (capacity <= 0 selects the default ~64k — the flight-recorder
// depth).
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID { return trace.NewID() }

// WithTraceID returns a context carrying the trace ID: traced plan
// executions stamp their spans with it, and the serve client forwards
// it in the request header so server-side spans join the same
// timeline.
func WithTraceID(ctx context.Context, id TraceID) context.Context {
	return trace.WithID(ctx, id)
}

// TraceIDFrom extracts the trace ID from ctx (zero when absent).
func TraceIDFrom(ctx context.Context) TraceID { return trace.IDFrom(ctx) }

// WithTracer returns a context carrying the tracer. A context tracer
// overrides the plan's own for executions under that context — the
// race-free way to trace individual requests on a plan shared across
// goroutines.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return trace.WithTracer(ctx, t)
}

// SetTracer attaches (or, with nil, detaches) an event tracer to the
// plan. Like Instrument it is a plain pointer write: install it before
// sharing the plan, not while transforms are in flight.
func (p *Plan) SetTracer(t *Tracer) { p.inner.SetTracer(t) }

// Tracer returns the plan's attached tracer (nil when tracing is off).
func (p *Plan) Tracer() *Tracer { return p.inner.Tracer() }

// MergeTraces stitches Perfetto trace files written by separate
// processes (e.g. soinode's per-rank -trace-out files) into one
// timeline, aligning clocks on each file's sync instant when present.
func MergeTraces(w io.Writer, inputs ...io.Reader) error {
	return trace.Merge(w, inputs...)
}

// TraceSummary is the per-stage critical-path digest of a Perfetto
// trace file (see SummarizeTrace).
type TraceSummary = trace.Summary

// SummarizeTrace folds a Perfetto trace file — one rank's, or several
// merged with MergeTraces — into the per-stage critical-path table
// soitrace's summary subcommand prints: per span name, the summed wall
// time of the slowest rank, the straggler's identity, and the span's
// share of the straggler-bounded critical path, plus any explainer
// findings mirrored into the trace.
func SummarizeTrace(r io.Reader) (*TraceSummary, error) {
	return trace.Summarize(r)
}
